"""Neumann-series polynomial preconditioner (Section 2.1.2, Algorithm 7).

With :math:`G = I - \\omega A` and :math:`\\rho(G) < 1`,

.. math:: P_m(A) = \\omega (I + G + G^2 + \\dots + G^m) \\approx A^{-1}.

Application is the truncated geometric series: ``m`` matvecs, nothing else
— the simplest polynomial preconditioner and the paper's "Neum(m)"
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import PolynomialPreconditioner
from repro.spectrum.intervals import SpectrumIntervals


class NeumannPolynomial(PolynomialPreconditioner):
    """Degree-``m`` Neumann series preconditioner.

    Parameters
    ----------
    degree:
        The series order ``m`` (``m`` matvecs per application).
    omega:
        Damping factor; must satisfy :math:`\\rho(I - \\omega A) < 1`.
        For a spectrum in ``(0, h)`` any ``0 < omega < 2/h`` works;
        ``omega = 1`` is the natural choice after norm-1 scaling.
    matvec:
        Optional bound matvec for :meth:`apply`.
    """

    def __init__(self, degree: int, omega: float = 1.0, matvec=None):
        super().__init__(degree, matvec)
        if omega <= 0:
            raise ValueError("omega must be positive")
        self.omega = float(omega)

    @classmethod
    def for_interval(
        cls, theta: SpectrumIntervals, degree: int, matvec=None
    ) -> "NeumannPolynomial":
        """Choose ``omega = 2 / (lo + hi)``, which minimizes
        :math:`\\rho(I-\\omega A)` over a single positive interval."""
        if theta.n_intervals != 1 or theta.lo <= 0:
            raise ValueError(
                "Neumann series requires a single positive interval"
            )
        return cls(degree, omega=2.0 / (theta.lo + theta.hi), matvec=matvec)

    def apply_linear(self, matvec, v, out=None):
        """Algorithm 7: ``z = omega * sum_{i=0..m} G^i v`` via the
        recurrence ``s <- s - omega A s`` (one matvec per term).

        NumPy inputs with an ``out=``-capable matvec run on two cached
        ping-pong buffers: zero allocations per degree.  ``(n, k)`` block
        inputs run the same recurrence with all ``k`` columns per matvec
        (the matvec must then be an SpMM accepting blocks).
        """
        if self._use_fast_path(matvec, v):
            ws = self._workspace(v.shape, 2)
            s, t = ws[0], ws[1]
            s[:] = v
            if out is None:
                out = np.empty(v.shape)
            out[:] = s  # via s: safe when out aliases v
            for _ in range(self.degree):
                matvec(s, out=t)
                np.multiply(t, self.omega, out=t)
                np.subtract(s, t, out=s)
                np.add(out, s, out=out)
            np.multiply(out, self.omega, out=out)
            return out
        s = v.copy()
        z = v.copy()
        for _ in range(self.degree):
            s = s - self.omega * matvec(s)
            z = z + s
        return self._finish(self.omega * z, out)

    def chain_terms(self):
        """Resident fused-dispatch descriptor (see base class): the
        worker replays ``s <- s - omega*As; z <- z + s`` then scales."""
        return ("neumann", {"omega": self.omega, "degree": self.degree})

    def power_coefficients(self) -> np.ndarray:
        """Coefficients of :math:`\\omega\\sum_{i\\le m} (1-\\omega\\lambda)^i`
        in the power basis."""
        poly = np.polynomial.Polynomial([0.0])
        g = np.polynomial.Polynomial([1.0, -self.omega])
        term = np.polynomial.Polynomial([1.0])
        for _ in range(self.degree + 1):
            poly = poly + term
            term = term * g
        coef = self.omega * poly.coef
        out = np.zeros(self.degree + 1)
        out[: len(coef)] = coef
        return out

    @property
    def name(self) -> str:
        return f"Neum({self.degree})"

    @property
    def spec(self) -> str:
        """Round-trippable spec string, e.g. ``"neumann(20)"``."""
        return f"neumann({self.degree})"
