"""Generalized least-squares (GLS) polynomial preconditioner (Section 2.1.3).

Solves, over a union of disjoint intervals :math:`\\Theta` excluding zero,

.. math:: \\min_{P_m} \\|1 - \\lambda P_m(\\lambda)\\|_w,

with the Chebyshev weight on each interval.  Construction follows the
paper's recipe: build polynomials :math:`\\{\\phi_i\\}` orthonormal w.r.t.
the *modified* weight :math:`\\lambda^2 w(\\lambda)` with the Stieltjes
procedure (so that :math:`\\{\\lambda\\phi_i\\}` is orthonormal w.r.t.
:math:`w`), then the best approximation of the constant 1 in
:math:`\\mathrm{span}\\{\\lambda\\phi_i\\}` is

.. math:: \\lambda P_m(\\lambda) = \\sum_{i=0}^m \\mu_i\\,\\lambda\\phi_i(\\lambda),
          \\qquad \\mu_i = \\langle 1, \\lambda\\phi_i\\rangle_w .

The discrete inner products use per-interval Gauss-Chebyshev quadrature,
which is exact for the polynomial degrees involved; the Stieltjes pass is a
Lanczos process on ``diag(nodes)`` and is numerically stable.  Application
``z = P_m(A) v`` runs the same three-term recurrence on vectors: exactly
``m`` matvecs (hence GLS(10) costs three more matvecs per iteration than
GLS(7) — the Table 3 trade-off).
"""

from __future__ import annotations

import numpy as np

from repro.fem.quadrature import gauss_chebyshev
from repro.precond.base import PolynomialPreconditioner
from repro.spectrum.intervals import SpectrumIntervals


def _discrete_measure(theta: SpectrumIntervals, n_quad: int):
    """Gauss-Chebyshev nodes/weights on every interval of ``theta``."""
    nodes = []
    weights = []
    t, w = gauss_chebyshev(n_quad)
    for lo, hi in theta:
        mid, half = (lo + hi) / 2.0, (hi - lo) / 2.0
        nodes.append(mid + half * t)
        weights.append(w)
    return np.concatenate(nodes), np.concatenate(weights)


def _stieltjes(nodes, weights, m):
    """Recurrence coefficients of polynomials orthonormal under the
    discrete measure ``(nodes, weights)``.

    Returns ``(alphas[0..m], betas[0..m])`` for the normalized recurrence

    .. math:: \\beta_{i+1}\\phi_{i+1}(\\lambda)
              = (\\lambda-\\alpha_i)\\phi_i(\\lambda) - \\beta_i\\phi_{i-1}(\\lambda)

    with :math:`\\beta_0\\phi_0 = 1` (so ``betas[0]`` is the norm of the
    constant 1).  Implemented as a Lanczos process on ``diag(nodes)`` with
    full reorthogonalization.
    """
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("measure has nonpositive mass")
    alphas = np.zeros(m + 1)
    betas = np.zeros(m + 1)
    betas[0] = np.sqrt(total)
    phi_prev = np.zeros_like(nodes)
    phi = np.ones_like(nodes) / betas[0]
    table = [phi]
    for i in range(m + 1):
        alphas[i] = float(np.sum(weights * nodes * phi * phi))
        if i == m:
            break
        nxt = (nodes - alphas[i]) * phi - betas[i] * phi_prev
        for p in table:
            nxt -= float(np.sum(weights * nxt * p)) * p
        norm = float(np.sqrt(np.sum(weights * nxt * nxt)))
        if norm < 1e-14 * betas[0]:
            raise ValueError(
                "measure supports fewer orthogonal polynomials than requested"
            )
        betas[i + 1] = norm
        phi_prev, phi = phi, nxt / norm
        table.append(phi)
    return alphas, betas


class GLSPolynomial(PolynomialPreconditioner):
    """Degree-``m`` generalized least-squares polynomial preconditioner.

    Parameters
    ----------
    theta:
        Spectrum estimate :math:`\\Theta` (union of intervals, 0 excluded).
    degree:
        Polynomial degree ``m`` (``m`` matvecs per application).
    n_quad:
        Gauss-Chebyshev points per interval; must exceed ``degree + 1`` for
        the discrete inner products to be exact (default auto-picks).
    matvec:
        Optional bound matvec for :meth:`apply`.
    """

    def __init__(
        self,
        theta: SpectrumIntervals,
        degree: int,
        n_quad: int | None = None,
        matvec=None,
    ):
        super().__init__(degree, matvec)
        self.theta = theta
        if n_quad is None:
            n_quad = max(4 * (degree + 2), 64)
        if n_quad < degree + 2:
            raise ValueError("n_quad must exceed degree + 1")
        nodes, weights = _discrete_measure(theta, n_quad)
        # Orthonormal basis under lambda^2 * w: modified discrete weights.
        self._alphas, self._betas = _stieltjes(
            nodes, weights * nodes * nodes, degree
        )
        # mu_i = <1, lambda phi_i>_w  (original weight w).
        mus = np.zeros(degree + 1)
        phi_prev = np.zeros_like(nodes)
        phi = np.ones_like(nodes) / self._betas[0]
        for i in range(degree + 1):
            mus[i] = float(np.sum(weights * nodes * phi))
            if i < degree:
                nxt = (
                    (nodes - self._alphas[i]) * phi - self._betas[i] * phi_prev
                ) / self._betas[i + 1]
                phi_prev, phi = phi, nxt
        self._mus = mus
        self._nodes = nodes
        self._weights = weights

    @classmethod
    def unit_interval(
        cls, degree: int, eps: float = 1e-6, matvec=None
    ) -> "GLSPolynomial":
        """The paper's default: :math:`\\Theta = (\\varepsilon, 1)` after
        norm-1 diagonal scaling."""
        return cls(SpectrumIntervals.single(eps, 1.0), degree, matvec=matvec)

    def apply_linear(self, matvec, v, out=None):
        """``z = sum_i mu_i phi_i(A) v`` via the three-term recurrence —
        exactly ``degree`` matvecs.

        NumPy inputs with an ``out=``-capable matvec run the workspace
        recurrence of :meth:`PolynomialPreconditioner._three_term_apply`:
        zero allocations per degree.
        """
        if self._use_fast_path(matvec, v):
            return self._three_term_apply(
                matvec, v, out, self._alphas, self._betas, self._mus,
                self.degree,
            )
        a, b, mu = self._alphas, self._betas, self._mus
        phi_prev = None
        phi = (1.0 / b[0]) * v
        z = mu[0] * phi
        for i in range(self.degree):
            nxt = matvec(phi) - a[i] * phi
            if phi_prev is not None:
                nxt = nxt - b[i] * phi_prev
            nxt = (1.0 / b[i + 1]) * nxt
            z = z + mu[i + 1] * nxt
            phi_prev, phi = phi, nxt
        return self._finish(z, out)

    def chain_terms(self):
        """Resident fused-dispatch descriptor (see base class): the
        worker replays the three-term Stieltjes recurrence from the
        shipped ``alpha``/``beta``/``mu`` tables."""
        return (
            "gls",
            {
                "a": [float(x) for x in self._alphas],
                "b": [float(x) for x in self._betas],
                "mu": [float(x) for x in self._mus],
                "degree": self.degree,
            },
        )

    def power_coefficients(self) -> np.ndarray:
        """Power-basis coefficients of ``P_m`` (via the recurrence on
        ``numpy`` polynomial objects); feeds the Eq. 24 stability bound."""
        a, b, mu = self._alphas, self._betas, self._mus
        lam = np.polynomial.Polynomial([0.0, 1.0])
        phi_prev = np.polynomial.Polynomial([0.0])
        phi = np.polynomial.Polynomial([1.0 / b[0]])
        total = mu[0] * phi
        for i in range(self.degree):
            nxt = ((lam - a[i]) * phi - b[i] * phi_prev) / b[i + 1]
            total = total + mu[i + 1] * nxt
            phi_prev, phi = phi, nxt
        out = np.zeros(self.degree + 1)
        out[: len(total.coef)] = total.coef
        return out

    def residual_sup_norm(self, per_interval: int = 400) -> float:
        """``max |1 - lambda P(lambda)|`` over a fine grid in Theta."""
        grid = self.theta.sample(per_interval)
        return float(np.max(np.abs(self.residual(grid))))

    @property
    def name(self) -> str:
        return f"GLS({self.degree})"

    @property
    def spec(self) -> str:
        """Round-trippable spec string, e.g. ``"gls(7)"``."""
        return f"gls({self.degree})"
