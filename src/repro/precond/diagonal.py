"""Jacobi (diagonal) preconditioner — the cheap baseline the paper says is
"not effective enough" for large complex problems (Section 2.1)."""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner, SingularPreconditionerError
from repro.sparse.csr import CSRMatrix


class JacobiPreconditioner(Preconditioner):
    """``z = D^{-1} v`` with ``D`` the matrix diagonal."""

    def __init__(self, a: CSRMatrix):
        diag = a.diagonal()
        if np.any(diag == 0.0):
            raise SingularPreconditionerError("zero diagonal entry")
        self._inv_diag = 1.0 / diag

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return ``D^{-1} v``."""
        v = np.asarray(v, dtype=np.float64)
        if v.shape != self._inv_diag.shape:
            raise ValueError("vector length mismatch")
        return self._inv_diag * v

    @property
    def name(self) -> str:
        return "Jacobi"
