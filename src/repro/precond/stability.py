"""Floating-point stability of polynomial filtering (Section 2.2, Eq. 24).

The rounding error of ``z = P_m(A) v`` is bounded by

.. math:: \\|z_{fl} - z\\|_2 \\le m\\,\\varepsilon \\sum_{i=0}^m |a_i|,

with :math:`a_i` the power-basis coefficients of :math:`P_m`.  The bound
grows explosively with the degree for least-squares polynomials (Fig. 3),
which is why the paper restricts practical degrees to below ~10.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import PolynomialPreconditioner


def coefficient_error_bound(
    precond: PolynomialPreconditioner, eps: float = np.finfo(np.float64).eps
) -> float:
    """Eq. 24's bound :math:`m\\varepsilon\\sum|a_i|` for one preconditioner."""
    coef = precond.power_coefficients()
    return float(precond.degree * eps * np.sum(np.abs(coef)))


def stability_curve(
    factory, degrees, eps: float = np.finfo(np.float64).eps
) -> np.ndarray:
    """Evaluate the Eq. 24 bound over a sweep of polynomial degrees.

    ``factory(m)`` must build the degree-``m`` preconditioner; returns the
    array of bounds (the Fig. 3 curve).
    """
    return np.array(
        [coefficient_error_bound(factory(int(m)), eps) for m in degrees]
    )
