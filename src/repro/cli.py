"""Command-line interface.

``python -m repro <command>``:

* ``solve``        — one solve of a Table 2 mesh with full reporting.
* ``scaling``      — Table-3-style sweep over processor counts.
* ``convergence``  — Figs. 11-13-style preconditioner comparison.
* ``meshes``       — print the Table 2 family.
* ``trace``        — summarize or convert a ``--trace`` recording.
* ``serve``        — JSON-lines solver service on stdin/stdout.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import PAPER_MESHES, cantilever_problem
from repro.parallel.machine import MACHINES, modeled_time
from repro.reporting.convergence import convergence_table
from repro.reporting.tables import format_table


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel FE-based domain-decomposition FGMRES with polynomial "
            "preconditioning (Liang, Kanapady & Tamma, TR 05-001)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one cantilever problem")
    solve.add_argument("--mesh", type=int, default=4, help="Table 2 mesh id")
    solve.add_argument("-p", "--parts", type=int, default=8, help="rank count")
    solve.add_argument(
        "--method",
        choices=["edd-enhanced", "edd-basic", "rdd"],
        default="edd-enhanced",
    )
    solve.add_argument(
        "--precond",
        default="gls(7)",
        help=(
            'e.g. "gls(7)", "neumann(20)", "none", or a two-level '
            'composite "2l(gls(7),deflate)" / "2l(neumann(20),deflate,tr)"'
        ),
    )
    solve.add_argument("--tol", type=float, default=1e-6)
    solve.add_argument("--restart", type=int, default=25)
    solve.add_argument("--dynamic", action="store_true")
    solve.add_argument(
        "--comm-backend",
        choices=["virtual", "thread", "process", "chaos"],
        default=None,
        help=(
            "communicator backend executing the rank loops (default: "
            "REPRO_COMM_BACKEND or 'virtual'); 'process' fans collectives "
            "out to spawned worker processes over shared memory; 'chaos' "
            "wraps an inner backend with deterministic fault injection"
        ),
    )
    solve.add_argument(
        "--fault-plan",
        metavar="JSON_OR_PATH",
        default=None,
        help=(
            "chaos fault plan as a JSON string or a path to a .json file "
            "(implies --comm-backend chaos); equivalent to setting "
            "REPRO_CHAOS_PLAN"
        ),
    )
    solve.add_argument(
        "--kernel-backend",
        default=None,
        help="sparse-kernel backend for this solve (see repro.sparse.kernels)",
    )
    solve.add_argument(
        "--nrhs",
        type=int,
        default=1,
        metavar="K",
        help=(
            "solve K right-hand sides in one batched block solve (columns "
            "are scaled copies of the cantilever load); K=1 uses the "
            "single-RHS path"
        ),
    )
    solve.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "append the run record to a JSON file (one record per "
            "right-hand side when --nrhs > 1)"
        ),
    )
    solve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a span/metrics trace of the run to PATH; a name "
            "ending in 'chrome.json' writes Chrome trace format "
            "(Perfetto-loadable), anything else the repro-trace/1 schema "
            "(inspect with 'repro trace summarize PATH')"
        ),
    )

    scaling = sub.add_parser("scaling", help="Table-3-style scaling sweep")
    scaling.add_argument("--mesh", type=int, default=3)
    scaling.add_argument("--precond", default="gls(7)")
    scaling.add_argument(
        "--machine", choices=sorted(MACHINES), default="origin"
    )
    scaling.add_argument(
        "--ranks", type=int, nargs="+", default=[1, 2, 4, 8]
    )

    conv = sub.add_parser(
        "convergence", help="compare preconditioners on one mesh"
    )
    conv.add_argument("--mesh", type=int, default=2)
    conv.add_argument(
        "--preconds",
        nargs="+",
        default=["none", "gls(3)", "gls(7)", "gls(10)", "neumann(20)"],
    )
    conv.add_argument("--tol", type=float, default=1e-6)
    conv.add_argument(
        "--plot",
        action="store_true",
        help="render the residual histories as an ASCII semilog plot",
    )

    sub.add_parser("meshes", help="print the Table 2 mesh family")

    trace = sub.add_parser(
        "trace", help="summarize or convert a recorded solve trace"
    )
    tsub = trace.add_subparsers(dest="action", required=True)
    tsum = tsub.add_parser(
        "summarize", help="print phase/span/metric tables for a trace"
    )
    tsum.add_argument("path", help="repro-trace/1 JSON from solve --trace")
    tchrome = tsub.add_parser(
        "chrome", help="convert a repro-trace/1 file to Chrome trace format"
    )
    tchrome.add_argument("path", help="repro-trace/1 JSON from solve --trace")
    tchrome.add_argument(
        "--out",
        default=None,
        help="output path (default: <path minus .json>.chrome.json)",
    )

    rep = sub.add_parser(
        "reproduce", help="regenerate the paper's core results (< 1 min)"
    )
    rep.add_argument("--out", default="results", help="output directory")
    rep.add_argument("--mesh", type=int, default=3, help="scaling-study mesh")

    serve = sub.add_parser(
        "serve",
        help=(
            "run the solver service as a JSON-lines loop on stdin/stdout "
            "(one SolveRequest per input line, one SolveResponse per "
            "output line; {\"op\": \"stats\"} and {\"op\": \"shutdown\"} "
            "are control lines — see docs/SERVICE.md)"
        ),
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="batches solving concurrently in the worker pool",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="admitted requests beyond which submissions are rejected",
    )
    serve.add_argument(
        "--window", type=float, default=0.005,
        help="coalescing batch window in seconds",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16,
        help="max requests coalesced into one block solve",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="solve every request alone (debugging / benchmarking control)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=8,
        help="session-cache bound on prepared systems (LRU-evicted)",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=None,
        help="session-cache bound on estimated resident bytes",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-request deadline in seconds",
    )
    return parser


def _write_trace(tracer, path) -> None:
    """Write a finished trace; 'chrome.json' suffix selects Chrome format."""
    tracer.write_json(path, chrome=path.endswith("chrome.json"))
    print(f"trace written to {path}")


def cmd_solve(args) -> int:
    """``repro solve``: one cantilever solve with full reporting."""
    from contextlib import nullcontext

    if args.nrhs < 1:
        print(
            f"error: --nrhs must be >= 1, got {args.nrhs}", file=sys.stderr
        )
        return 2
    from repro.precond.spec import make_preconditioner

    try:
        make_preconditioner(args.precond)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer(meta={"mesh": args.mesh})
    problem = cantilever_problem(args.mesh, with_mass=args.dynamic)
    comm_backend = args.comm_backend
    chaos_ctx = nullcontext()
    if args.fault_plan is not None:
        import os

        from repro.parallel.chaos import FaultPlan, use_fault_plan

        raw = args.fault_plan
        if raw.endswith(".json") and os.path.exists(raw):
            with open(raw, encoding="utf-8") as fh:
                raw = fh.read()
        inner = comm_backend if comm_backend not in (None, "chaos") else "virtual"
        chaos_ctx = use_fault_plan(FaultPlan.from_json(raw), inner=inner)
        comm_backend = "chaos"
    options = SolverOptions(
        method=args.method,
        precond=None if args.precond == "none" else args.precond,
        tol=args.tol,
        restart=args.restart,
        dynamic=args.dynamic,
        comm_backend=comm_backend,
        kernel_backend=args.kernel_backend,
    )
    if args.nrhs > 1:
        with chaos_ctx:
            return _solve_batch(args, problem, options, tracer)
    with chaos_ctx:
        summary = solve_cantilever(
            problem, n_parts=args.parts, options=options, tracer=tracer
        )
    res = summary.result
    print(
        f"mesh {args.mesh} ({problem.n_eqn} eqns), {args.method}, "
        f"{summary.precond_name}, P={args.parts}, "
        f"comm={summary.comm_backend}"
    )
    print(res)
    if not args.dynamic:
        r = problem.load - problem.stiffness.matvec(res.x)
        rel = np.linalg.norm(r) / np.linalg.norm(problem.load)
        print(f"true relative residual: {rel:.3e}")
    for event in res.diagnostics:
        print(f"diagnostic: [{event.kind}] iter {event.iteration}: "
              f"{event.detail}")
    st = summary.stats
    print(
        f"flops={st.total_flops:,} messages={st.total_nbr_messages} "
        f"words={st.total_nbr_words:,} reductions={st.max_reductions}"
    )
    for name, machine in sorted(MACHINES.items()):
        print(f"modeled time on {machine.name}: {modeled_time(st, machine):.4f} s")
    if args.json:
        import os

        from repro.io.records import (
            load_records,
            record_from_summary,
            save_records,
        )

        label = (
            f"mesh{args.mesh}/{args.method}/{summary.precond_name}/"
            f"p{args.parts}"
        )
        records = (
            load_records(args.json) if os.path.exists(args.json) else []
        )
        records.append(record_from_summary(summary, label, problem.n_eqn))
        save_records(records, args.json)
        print(f"record appended to {args.json}")
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0 if res.converged else 1


def _solve_batch(args, problem, options, tracer=None) -> int:
    """``repro solve --nrhs K``: one batched block solve of K load cases."""
    from repro.core.session import solve_cantilever_batch

    k = args.nrhs
    scales = 1.0 + 0.1 * np.arange(k)
    b_block = problem.load[:, None] * scales
    summary = solve_cantilever_batch(
        problem, b_block, n_parts=args.parts, options=options, tracer=tracer
    )
    print(
        f"mesh {args.mesh} ({problem.n_eqn} eqns), {args.method}, "
        f"{summary.precond_name}, P={args.parts}, "
        f"comm={summary.comm_backend}, nrhs={k}"
    )
    for c, (res, rel) in enumerate(
        zip(summary.results, summary.true_residuals)
    ):
        status = "converged" if res.converged else "NOT converged"
        print(
            f"  rhs[{c}]: {status} in {res.iterations} iterations, "
            f"true relative residual {rel:.3e}"
        )
        for event in res.diagnostics:
            print(
                f"  diagnostic: [{event.kind}] iter {event.iteration}: "
                f"{event.detail}"
            )
    st = summary.stats
    print(
        f"flops={st.total_flops:,} messages={st.total_nbr_messages} "
        f"words={st.total_nbr_words:,} reductions={st.max_reductions}"
    )
    rate = k / summary.wall_time if summary.wall_time > 0 else float("inf")
    print(
        f"setup {summary.setup_time:.4f} s, solve {summary.wall_time:.4f} s, "
        f"{rate:.2f} RHS/s"
    )
    if args.json:
        import os

        from repro.io.records import (
            load_records,
            records_from_batch,
            save_records,
        )

        label = (
            f"mesh{args.mesh}/{args.method}/{summary.precond_name}/"
            f"p{args.parts}"
        )
        records = (
            load_records(args.json) if os.path.exists(args.json) else []
        )
        new = records_from_batch(summary, label, problem.n_eqn)
        records.extend(new)
        save_records(records, args.json)
        print(f"{len(new)} records appended to {args.json}")
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0 if summary.all_converged else 1


def cmd_scaling(args) -> int:
    """``repro scaling``: Table-3-style sweep over processor counts."""
    problem = cantilever_problem(args.mesh)
    machine = MACHINES[args.machine]
    rows = []
    t1 = None
    for p in args.ranks:
        if p > problem.mesh.n_elements:
            continue
        s = solve_cantilever(
            problem, n_parts=p, options=SolverOptions(precond=args.precond)
        )
        tp = modeled_time(s.stats, machine)
        if t1 is None:
            t1 = tp
        rows.append(
            [p, s.result.iterations, f"{tp:.4f}", f"{t1 / tp:.2f}"]
        )
    print(
        format_table(
            ["P", "iterations", f"modeled T on {machine.name} (s)", "speedup"],
            rows,
            title=f"Mesh{args.mesh}, EDD-FGMRES-{args.precond}",
        )
    )
    return 0


def cmd_convergence(args) -> int:
    """``repro convergence``: preconditioner comparison on one mesh."""
    from repro.core.driver import make_preconditioner
    from repro.precond.scaling import scale_system
    from repro.solvers.fgmres import fgmres

    problem = cantilever_problem(args.mesh)
    ss = scale_system(problem.stiffness, problem.load)
    mv = ss.a.matvec
    results = {}
    for spec in args.preconds:
        pc = make_preconditioner(None if spec == "none" else spec)
        pre = None if pc is None else (lambda v, pc=pc: pc.apply_linear(mv, v))
        name = "none" if pc is None else pc.name
        results[name] = fgmres(
            mv, ss.b, pre, restart=25, tol=args.tol, max_iter=5000
        )
    print(f"Mesh{args.mesh} ({problem.n_eqn} eqns), tol={args.tol:g}")
    print(convergence_table(results))
    if args.plot:
        from repro.reporting.ascii_plot import convergence_plot

        print()
        print(convergence_plot(results))
    return 0 if all(r.converged for r in results.values()) else 1


def cmd_meshes(_args) -> int:
    """``repro meshes``: print the Table 2 family."""
    rows = [
        [k, f"{nx} x {ny}", n_node, n_eqn, edge]
        for k, (nx, ny, n_node, n_eqn, edge) in PAPER_MESHES.items()
    ]
    print(
        format_table(
            ["Mesh", "elements", "nNode", "nEqn", "clamped edge"],
            rows,
            title="Table 2 — cantilever mesh family",
        )
    )
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: summarize or convert a recorded solve trace."""
    import json

    try:
        with open(args.path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.path!r}: {exc}", file=sys.stderr)
        return 2
    if args.action == "summarize":
        from repro.obs import summarize_trace

        try:
            print(summarize_trace(trace))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    # chrome conversion
    from repro.obs import chrome_trace_from_dict

    out = args.out
    if out is None:
        base = args.path[:-5] if args.path.endswith(".json") else args.path
        out = base + ".chrome.json"
    try:
        doc = chrome_trace_from_dict(trace)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    print(f"chrome trace written to {out}")
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: the JSON-lines solver-service loop."""
    import asyncio

    from repro.service import ServiceConfig, serve_jsonl

    config = ServiceConfig(
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        batch_window=args.window,
        max_batch=args.max_batch,
        coalesce=not args.no_coalesce,
        default_timeout=args.timeout,
        session_max_entries=args.cache_entries,
        session_max_bytes=args.cache_bytes,
    )
    asyncio.run(serve_jsonl(sys.stdin, sys.stdout, config))
    return 0


def cmd_reproduce(args) -> int:
    """``repro reproduce``: quick regeneration of the paper's core results."""
    from repro.experiments import reproduce_all

    tables = reproduce_all(args.out, mesh_id=args.mesh)
    for table in tables.values():
        print(table)
        print()
    print(f"results written to {args.out}/")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "solve": cmd_solve,
        "scaling": cmd_scaling,
        "convergence": cmd_convergence,
        "meshes": cmd_meshes,
        "trace": cmd_trace,
        "reproduce": cmd_reproduce,
        "serve": cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
