"""One-call reproduction orchestrator.

``reproduce_all(out_dir)`` regenerates the paper's core quantitative
results — the Table 2 mesh family, Fig. 11/13-style convergence
comparisons, and a Table 3-style scaling sweep — writing both
human-readable ``.txt`` tables and machine-readable ``.json`` records.
Exposed on the CLI as ``python -m repro reproduce``.

The full evaluation (every figure, ablations) lives in the benchmark
suite; this module is the fast everyday subset (< 1 minute) that a user
runs first to confirm the installation reproduces the paper.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import PAPER_MESHES, cantilever_problem
from repro.io.records import record_from_summary, save_records
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.neumann import NeumannPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.convergence import convergence_table
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres


def reproduce_table2(out_dir: str) -> str:
    """Regenerate the Table 2 mesh family; returns the rendered table."""
    rows = []
    for k, (nx, ny, n_node, n_eqn, _) in PAPER_MESHES.items():
        p = cantilever_problem(k)
        ok = p.mesh.n_nodes == n_node and p.n_eqn == n_eqn
        rows.append(
            [k, f"{nx}x{ny}", p.mesh.n_nodes, p.n_eqn, "OK" if ok else "MISMATCH"]
        )
    table = format_table(
        ["Mesh", "elements", "nNode", "nEqn", "vs paper"],
        rows,
        title="Table 2 — mesh family",
    )
    _write(out_dir, "table2.txt", table)
    return table


def reproduce_convergence(out_dir: str, mesh_id: int = 2) -> str:
    """Regenerate the Fig. 11/13 preconditioner comparison on one mesh."""
    p = cantilever_problem(mesh_id)
    ss = scale_system(p.stiffness, p.load)
    mv = ss.a.matvec
    cases = {"none": None}
    for m in (1, 3, 7, 10, 20):
        g = GLSPolynomial.unit_interval(m, eps=1e-6)
        cases[g.name] = (lambda g: (lambda v: g.apply_linear(mv, v)))(g)
    n20 = NeumannPolynomial(20)
    cases[n20.name] = lambda v: n20.apply_linear(mv, v)
    cases["ILU(0)"] = ILU0Preconditioner(ss.a).apply
    results = {
        name: fgmres(mv, ss.b, pre, restart=25, tol=1e-6, max_iter=4000)
        for name, pre in cases.items()
    }
    table = (
        f"Figs. 11/13 — preconditioner comparison, Mesh{mesh_id}\n"
        + convergence_table(results)
    )
    _write(out_dir, f"convergence_mesh{mesh_id}.txt", table)
    payload = {
        name: {"iterations": r.iterations, "converged": bool(r.converged)}
        for name, r in results.items()
    }
    _write(
        out_dir,
        f"convergence_mesh{mesh_id}.json",
        json.dumps(payload, indent=2, sort_keys=True),
    )
    return table


def reproduce_scaling(
    out_dir: str, mesh_id: int = 3, degrees=(7, 10), ranks=(1, 2, 4, 8)
) -> str:
    """Regenerate a Table 3 block (modeled Origin times and speedups)."""
    p = cantilever_problem(mesh_id)
    rows = []
    records = []
    for m in degrees:
        t1 = None
        for q in ranks:
            if q > p.mesh.n_elements:
                continue
            s = solve_cantilever(
                p, n_parts=q, options=SolverOptions(precond=f"gls({m})")
            )
            t = modeled_time(s.stats, SGI_ORIGIN)
            if t1 is None:
                t1 = t
            rows.append(
                [f"GLS({m})", q, s.result.iterations, f"{t:.4f}", f"{t1 / t:.2f}"]
            )
            records.append(
                record_from_summary(
                    s, f"mesh{mesh_id}/gls({m})/p{q}", p.n_eqn
                )
            )
    table = format_table(
        ["precond", "P", "iters", "T origin (s)", "speedup"],
        rows,
        title=f"Table 3 block — Mesh{mesh_id}, SGI Origin model",
    )
    _write(out_dir, f"table3_mesh{mesh_id}.txt", table)
    save_records(records, os.path.join(out_dir, f"table3_mesh{mesh_id}.json"))
    return table


def reproduce_all(out_dir: str, mesh_id: int = 3) -> dict:
    """Run the quick reproduction set; returns the rendered tables."""
    os.makedirs(out_dir, exist_ok=True)
    return {
        "table2": reproduce_table2(out_dir),
        "convergence": reproduce_convergence(out_dir, mesh_id=2),
        "scaling": reproduce_scaling(out_dir, mesh_id=mesh_id),
    }


def _write(out_dir: str, name: str, content: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, name), "w", encoding="utf-8") as fh:
        fh.write(content + "\n")
