"""Standard restarted GMRES with fixed left preconditioning.

Solves ``C A x = C b``: the preconditioner must stay constant across the
cycle (updates are built from the basis ``V``, Eq. 3), in contrast to
:func:`repro.solvers.fgmres`.  Kept as the reference point FGMRES is
validated against — with a fixed preconditioner both must converge to the
same solution.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult


def gmres(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
) -> SolveResult:
    """Left-preconditioned restarted GMRES; same signature as ``fgmres``.

    Note the residual history tracks the *preconditioned* residual
    ``||C r||`` (that is what the least-squares process minimizes under
    left preconditioning).
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if precond is None:
        precond = lambda v: v.copy()  # noqa: E731 - trivial identity
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    r0 = precond(b - matvec(x))
    norm_r0 = float(np.linalg.norm(r0))
    history = [1.0]
    if norm_r0 == 0.0:
        return SolveResult(x, True, 0, 0, history)

    total_iters = 0
    restarts = 0
    converged = False
    r = r0
    beta = norm_r0
    while not converged and total_iters < max_iter:
        restarts += 1
        v = np.zeros((restart + 1, n))
        v[0] = r / beta
        lsq = GivensLSQ(restart, beta)
        j = 0
        while j < restart and total_iters < max_iter:
            w = precond(matvec(v[j]))
            h = np.empty(j + 2)
            h[: j + 1] = v[: j + 1] @ w
            w = w - h[: j + 1] @ v[: j + 1]
            h[j + 1] = np.linalg.norm(w)
            res = lsq.append_column(h)
            total_iters += 1
            history.append(res / norm_r0)
            if res / norm_r0 <= tol or h[j + 1] <= breakdown_tol:
                converged = True
                j += 1
                break
            v[j + 1] = w / h[j + 1]
            j += 1
        y = lsq.solve()
        if len(y):
            x = x + y @ v[: len(y)]
        r = precond(b - matvec(x))
        beta = float(np.linalg.norm(r))
        if beta / norm_r0 <= tol:
            converged = True
    return SolveResult(x, converged, total_iters, restarts, history)
