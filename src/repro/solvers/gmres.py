"""Standard restarted GMRES with fixed left preconditioning.

Solves ``C A x = C b``: the preconditioner must stay constant across the
cycle (updates are built from the basis ``V``, Eq. 3), in contrast to
:func:`repro.solvers.fgmres`.  Kept as the reference point FGMRES is
validated against — with a fixed preconditioner both must converge to the
same solution.

Shares FGMRES's workspace discipline: preallocated basis, in-place
Gram-Schmidt, ``out=``-aware matvec/preconditioner (see
:mod:`repro.solvers.fgmres`) — and FGMRES's hardening: a
:class:`repro.solvers.diagnostics.ConvergenceMonitor` guards against
NaN/Inf, stagnation, divergence, unconfirmed breakdowns and lying
recurrence residuals, reporting events in ``SolveResult.diagnostics``
(the residuals verified here are the *preconditioned* ones the method
minimizes).
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import NULL_TRACER
from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.fgmres import _identity_precond
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult
from repro.sparse.kernels import accepts_out


def gmres(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
    tracer=None,
) -> SolveResult:
    """Left-preconditioned restarted GMRES; same signature as ``fgmres``.

    Note the residual history tracks the *preconditioned* residual
    ``||C r||`` (that is what the least-squares process minimizes under
    left preconditioning).
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if precond is None:
        precond = _identity_precond
    mv_out = accepts_out(matvec)
    pc_out = accepts_out(precond)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    # Per-solve workspace, reused across all restart cycles.
    v = np.empty((restart + 1, n))
    w = np.empty(n)
    tmp = np.empty(n)
    r = np.empty(n)
    hcol = np.empty(restart + 1)

    def precond_residual(into: np.ndarray) -> None:
        """into = C (b - A x), through the workspace when possible."""
        if mv_out:
            matvec(x, out=tmp)
        else:
            tmp[:] = matvec(x)
        np.subtract(b, tmp, out=tmp)
        if pc_out:
            precond(tmp, out=into)
        else:
            into[:] = precond(tmp)

    precond_residual(r)
    norm_r0 = float(np.linalg.norm(r))
    history = [1.0]
    if norm_r0 == 0.0:
        return SolveResult(x, True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_r0, 0, "initial residual"):
        return SolveResult(x, False, 0, 0, history, monitor.finalize(False, 0, 1.0))

    total_iters = 0
    restarts = 0
    converged = False
    beta = norm_r0
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    while not converged and total_iters < max_iter and not monitor.fatal:
        restarts += 1
        if traced:
            trc.begin("cycle", "solver", cycle=restarts)
        np.divide(r, beta, out=v[0])
        lsq = GivensLSQ(restart, beta)
        broke_down = False
        j = 0
        while j < restart and total_iters < max_iter:
            if traced:
                trc.begin("arnoldi_step", "solver", j=j)
                trc.begin("matvec", "solver")
            if mv_out:
                matvec(v[j], out=tmp)
            else:
                tmp[:] = matvec(v[j])
            if traced:
                trc.end()
                trc.begin("precond_apply", "solver")
            if pc_out:
                precond(tmp, out=w)
            else:
                w[:] = precond(tmp)
            if traced:
                trc.end()
                trc.begin("orthogonalize", "solver")
            h = hcol[: j + 2]
            np.dot(v[: j + 1], w, out=h[: j + 1])
            np.dot(h[: j + 1], v[: j + 1], out=tmp)
            w -= tmp
            h[j + 1] = np.linalg.norm(w)
            if traced:
                trc.end()  # orthogonalize
            if not monitor.check_finite(h, total_iters + 1, "Hessenberg column"):
                if traced:
                    trc.end()  # arnoldi_step
                break
            if traced:
                trc.begin("givens_update", "solver")
            res = lsq.append_column(h)
            if traced:
                trc.end()
            total_iters += 1
            history.append(res / norm_r0)
            if traced:
                trc.metric(iteration=total_iters, rel_res=res / norm_r0)
            if not monitor.check_divergence(res / norm_r0, total_iters):
                if traced:
                    trc.end()
                break
            if res / norm_r0 <= tol:
                converged = True
                j += 1
                if traced:
                    trc.end()
                break
            if h[j + 1] <= breakdown_tol:
                # Possible happy breakdown — confirmed by the recomputed
                # residual below, never trusted outright.
                monitor.note_breakdown(float(h[j + 1]), total_iters)
                broke_down = True
                j += 1
                if traced:
                    trc.end()
                break
            np.divide(w, h[j + 1], out=v[j + 1])
            j += 1
            if traced:
                trc.end()  # arnoldi_step
        y = lsq.solve()
        if len(y):
            np.dot(y, v[: len(y)], out=tmp)
            x += tmp
        precond_residual(r)
        beta = float(np.linalg.norm(r))
        if not monitor.check_finite(beta, total_iters, "recomputed residual"):
            if traced:
                trc.end()  # cycle
            break
        true_rel = beta / norm_r0
        if traced:
            trc.metric(iteration=total_iters, true_rel=true_rel,
                       cycle=restarts)
        if true_rel <= tol:
            converged = True
        elif converged:
            converged = monitor.confirm_convergence(true_rel, total_iters)
        elif broke_down:
            monitor.confirm_breakdown(true_rel, total_iters)
        if not converged:
            monitor.cycle_end(true_rel, total_iters)
        if traced:
            trc.end(true_rel=true_rel)  # cycle
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        x,
        converged,
        total_iters,
        restarts,
        history,
        monitor.finalize(converged, total_iters, final_rel),
    )
