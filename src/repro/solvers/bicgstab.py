"""BiCGSTAB — a short-recurrence Krylov baseline.

Not in the paper, but the natural ablation question for its GMRES choice:
a transpose-free short-recurrence method avoids GMRES's growing
orthogonalization cost and its restart-induced stagnation, at the price of
a rougher convergence curve.  Preconditioning is right-sided so the
residual being monitored is the true residual.

Hardened with a :class:`repro.solvers.diagnostics.ConvergenceMonitor`:
every breakdown exit (``rho``, ``r_shadow.v``, ``t.t`` or ``omega``
collapsing) is reported as a structured ``breakdown`` event, NaN/Inf in
any recurrence scalar aborts immediately, and divergence/stagnation
terminate early — the solver still never raises on numerical failure,
it reports through ``SolveResult.diagnostics``.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.result import SolveResult

#: Iterations per stagnation-bookkeeping window (no restarts here either).
_CYCLE = 25


def bicgstab(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-30,
) -> SolveResult:
    """Solve ``A x = b`` by right-preconditioned BiCGSTAB.

    Each iteration costs 2 matvecs and 2 preconditioner applications.
    Breakdown (rho or omega collapsing) is reported as non-convergence
    with a ``breakdown`` diagnostic rather than raising.
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if precond is None:
        precond = lambda v: v.copy()  # noqa: E731 - trivial identity
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x)
    norm_r0 = float(np.linalg.norm(r))
    history = [1.0]
    norm_b = float(np.linalg.norm(b))
    # Already converged (including an exact initial guess, where the
    # shadow-residual inner products would spuriously "break down").
    if norm_r0 == 0.0 or (norm_b > 0 and norm_r0 <= tol * norm_b):
        return SolveResult(x, True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_r0, 0, "initial residual"):
        return SolveResult(
            x, False, 0, 0, history, monitor.finalize(False, 0, 1.0)
        )
    r_shadow = r.copy()
    rho_prev = 1.0
    alpha = 1.0
    omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    iters = 0
    converged = False
    while iters < max_iter:
        rho = float(r_shadow @ r)
        if not monitor.check_finite(rho, iters + 1, "rho inner product"):
            break
        if abs(rho) < breakdown_tol:
            monitor.record(
                "breakdown", iters + 1,
                f"rho = {rho:.3e} below breakdown tolerance",
            )
            break
        if iters == 0:
            p = r.copy()
        else:
            beta = (rho / rho_prev) * (alpha / omega)
            p = r + beta * (p - omega * v)
        p_hat = precond(p)
        v = matvec(p_hat)
        denom = float(r_shadow @ v)
        if not monitor.check_finite(denom, iters + 1, "r_shadow.v inner product"):
            break
        if abs(denom) < breakdown_tol:
            monitor.record(
                "breakdown", iters + 1,
                f"r_shadow.v = {denom:.3e} below breakdown tolerance",
            )
            break
        alpha = rho / denom
        s = r - alpha * v
        rel_s = float(np.linalg.norm(s)) / norm_r0
        if not monitor.check_finite(rel_s, iters + 1, "half-step residual norm"):
            break
        if rel_s <= tol:
            x = x + alpha * p_hat
            iters += 1
            history.append(rel_s)
            converged = True
            break
        s_hat = precond(s)
        t = matvec(s_hat)
        tt = float(t @ t)
        if not monitor.check_finite(tt, iters + 1, "t.t inner product"):
            break
        if tt < breakdown_tol:
            monitor.record(
                "breakdown", iters + 1,
                f"t.t = {tt:.3e} below breakdown tolerance",
            )
            break
        omega = float(t @ s) / tt
        if abs(omega) < breakdown_tol:
            monitor.record(
                "breakdown", iters + 1,
                f"omega = {omega:.3e} below breakdown tolerance",
            )
            break
        x = x + alpha * p_hat + omega * s_hat
        r = s - omega * t
        iters += 1
        rel = float(np.linalg.norm(r)) / norm_r0
        history.append(rel)
        if not monitor.check_finite(rel, iters, "residual norm"):
            break
        if rel <= tol:
            converged = True
            break
        if not monitor.check_divergence(rel, iters):
            break
        if iters % _CYCLE == 0:
            monitor.cycle_end(rel, iters)
            if monitor.fatal:
                break
        rho_prev = rho
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        x, converged, iters, 0, history,
        monitor.finalize(converged, iters, final_rel),
    )
