"""Solver-side anomaly detection and structured diagnostics.

The paper's robustness pitch — EDD-FGMRES with polynomial preconditioning
keeps working where local factorizations break — only holds in production
if the solver can *prove* it: a run must either converge with a verified
true residual or say, in structured form, what went wrong.  This module is
that reporting surface.  Every Krylov driver (:func:`repro.solvers.fgmres`,
:func:`repro.solvers.gmres`, :func:`repro.core.edd.edd_fgmres`,
:func:`repro.core.rdd.rdd_fgmres`) owns a :class:`ConvergenceMonitor` and
returns its event list in :attr:`repro.solvers.result.SolveResult.diagnostics`.

Event vocabulary (the ``kind`` field of every :class:`DiagnosticEvent`):

* ``non_finite`` — NaN/Inf detected in a Hessenberg column or residual
  norm; fatal (the Arnoldi recurrence is poisoned beyond repair).
* ``divergence`` — the relative residual exceeded ``divergence_factor``;
  fatal.
* ``stagnation`` — ``stagnation_cycles`` consecutive restart cycles ended
  without relative improvement beyond ``stagnation_rtol``; fatal.
* ``happy_breakdown`` — ``h_{j+1,j}`` fell below the breakdown tolerance
  (informational: the Krylov space looks invariant).
* ``breakdown`` — a short-recurrence scalar collapsed (CG's ``p.Ap`` not
  positive or ``r.z`` exactly zero, BiCGSTAB's ``rho``/``omega``/``t.t``
  vanishing, MINRES's Lanczos ``beta`` dying early); the solver stops
  instead of dividing by (near-)zero and looping on garbage.
* ``breakdown_restart`` — a breakdown was *not* confirmed by the
  recomputed true residual; the solver restarted instead of declaring
  victory (the recovery path for corrupted "lucky" breakdowns).
* ``residual_mismatch`` — the Givens recurrence claimed convergence but
  the true residual recomputed from ``b - A x`` disagreed by more than
  ``mismatch_factor``; convergence is demoted and iteration continues
  (the classic "recurrence residual lies" failure).
* ``no_convergence`` — catch-all appended at exit when the solve failed
  without any more specific event (e.g. plain ``max_iter`` exhaustion),
  so an unconverged result always carries a non-empty diagnosis.

The guards are tuned to be inert on healthy runs: finiteness checks
operate on O(restart) data, convergence demotion needs a
``mismatch_factor``-fold (default 100x) disagreement, and stagnation needs
multiple full restart cycles with essentially zero progress — none of
which a converging solve exhibits.  Iteration counts of healthy runs are
therefore bit-identical with and without the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The closed vocabulary of event kinds (documented above and in
#: docs/TESTING.md); tests assert membership so new kinds must be added
#: here deliberately.
EVENT_KINDS = (
    "non_finite",
    "divergence",
    "stagnation",
    "happy_breakdown",
    "breakdown",
    "breakdown_restart",
    "residual_mismatch",
    "no_convergence",
)


@dataclass(frozen=True)
class DiagnosticEvent:
    """One detected anomaly: where (iteration), what (kind), and detail."""

    iteration: int
    kind: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown diagnostic kind {self.kind!r}; known: {EVENT_KINDS}"
            )

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--json`` record representation)."""
        return {
            "iteration": int(self.iteration),
            "kind": self.kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DiagnosticEvent":
        return cls(
            iteration=int(payload["iteration"]),
            kind=payload["kind"],
            detail=payload.get("detail", ""),
        )


class ConvergenceMonitor:
    """Shared anomaly detector for the restarted Krylov drivers.

    One instance lives for one solve.  The solver feeds it Hessenberg
    columns, per-iteration relative residuals and the recomputed true
    residual at every restart boundary; it accumulates
    :class:`DiagnosticEvent` records and raises :attr:`fatal` when the
    solve cannot meaningfully continue.

    Parameters
    ----------
    tol:
        The solve's convergence tolerance (used to judge true residuals).
    divergence_factor:
        Fatal when the relative residual exceeds this (default ``1e8``).
    stagnation_cycles:
        Fatal after this many consecutive restart cycles without
        meaningful progress (default 3).
    stagnation_rtol:
        Minimum per-cycle relative improvement that counts as progress
        (default ``1e-3``, i.e. 0.1%).
    mismatch_factor:
        A claimed convergence is demoted when the recomputed true relative
        residual exceeds ``tol * mismatch_factor`` (default 100).
    """

    def __init__(
        self,
        tol: float,
        divergence_factor: float = 1e8,
        stagnation_cycles: int = 3,
        stagnation_rtol: float = 1e-3,
        mismatch_factor: float = 100.0,
    ):
        self.tol = float(tol)
        self.divergence_factor = float(divergence_factor)
        self.stagnation_cycles = int(stagnation_cycles)
        self.stagnation_rtol = float(stagnation_rtol)
        self.mismatch_factor = float(mismatch_factor)
        self.events: list = []
        self.fatal = False
        self._prev_cycle_res: float | None = None
        self._stagnant = 0

    def record(self, kind: str, iteration: int, detail: str = "") -> None:
        """Append an event (public so solvers can add context of their own)."""
        self.events.append(DiagnosticEvent(int(iteration), kind, detail))

    # ------------------------------------------------------------------
    # Per-iteration guards
    # ------------------------------------------------------------------
    def check_finite(self, values, iteration: int, where: str) -> bool:
        """NaN/Inf guard; fatal and False when anything is non-finite.

        ``values`` is a Hessenberg column, a residual norm, or any small
        array/scalar — the check is O(restart), never O(n).
        """
        if bool(np.all(np.isfinite(values))):
            return True
        self.fatal = True
        self.record("non_finite", iteration, f"non-finite value in {where}")
        return False

    def check_divergence(self, rel_res: float, iteration: int) -> bool:
        """Fatal (and False) when the relative residual has exploded."""
        if not (rel_res > self.divergence_factor):
            return True
        self.fatal = True
        self.record(
            "divergence",
            iteration,
            f"relative residual {rel_res:.3e} exceeds "
            f"{self.divergence_factor:.1e}",
        )
        return False

    def note_breakdown(self, h_last: float, iteration: int) -> None:
        """Record a (possible) happy breakdown — informational, the
        recomputed residual at the restart boundary decides the outcome."""
        self.record(
            "happy_breakdown", iteration, f"h[j+1,j] = {h_last:.3e}"
        )

    # ------------------------------------------------------------------
    # Restart-boundary checks
    # ------------------------------------------------------------------
    def confirm_convergence(self, true_rel: float, iteration: int) -> bool:
        """Verify a recurrence-claimed convergence against the recomputed
        true residual; demotes (returns False) on a gross mismatch."""
        if true_rel <= self.tol * self.mismatch_factor:
            return True
        self.record(
            "residual_mismatch",
            iteration,
            f"recurrence claimed convergence but recomputed relative "
            f"residual is {true_rel:.3e} (tol {self.tol:.1e})",
        )
        return False

    def confirm_breakdown(self, true_rel: float, iteration: int) -> bool:
        """After a breakdown, accept only when the recomputed residual
        agrees; otherwise record the restart recovery and continue."""
        if true_rel <= self.tol:
            return True
        self.record(
            "breakdown_restart",
            iteration,
            f"breakdown unconfirmed (true relative residual "
            f"{true_rel:.3e}); restarting",
        )
        return False

    def cycle_end(self, rel_res: float, iteration: int) -> None:
        """Stagnation bookkeeping at the end of an unconverged cycle."""
        prev = self._prev_cycle_res
        if prev is not None and not (rel_res < prev * (1.0 - self.stagnation_rtol)):
            self._stagnant += 1
            if self._stagnant >= self.stagnation_cycles:
                self.fatal = True
                self.record(
                    "stagnation",
                    iteration,
                    f"{self._stagnant} restart cycles without progress "
                    f"(relative residual {rel_res:.3e})",
                )
        else:
            self._stagnant = 0
        self._prev_cycle_res = rel_res

    # ------------------------------------------------------------------
    # Exit
    # ------------------------------------------------------------------
    def finalize(self, converged: bool, iteration: int, final_rel: float) -> list:
        """The event list for :attr:`SolveResult.diagnostics`; guarantees
        an unconverged result never leaves with empty diagnostics."""
        if not converged and not self.events:
            self.record(
                "no_convergence",
                iteration,
                f"iteration budget exhausted at relative residual "
                f"{final_rel:.3e}",
            )
        return list(self.events)
