"""Solver result container shared by all Krylov implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The computed solution.
    converged:
        Whether the relative-residual tolerance was met.
    iterations:
        Total inner iterations across all restart cycles (the paper's
        reported iteration counts).
    restarts:
        Number of restart cycles started.
    residual_history:
        Relative residual ``||r_i|| / ||r_0||`` after every inner
        iteration, starting with 1.0 at iteration 0 — the convergence
        curves of Figs. 11-14.
    diagnostics:
        Structured anomaly events
        (:class:`repro.solvers.diagnostics.DiagnosticEvent`) recorded by
        the solver's convergence monitor: NaN/Inf detection, stagnation,
        divergence, unconfirmed breakdowns and recurrence/true residual
        mismatches.  Empty for a clean converged run; guaranteed
        non-empty when ``converged`` is False (at minimum a
        ``no_convergence`` event).
    trace:
        Observability export (the ``repro-trace/1`` dict of
        :meth:`repro.obs.Tracer.to_dict`) when the solve ran with a
        tracer attached; None otherwise.  Excluded from equality
        comparisons and from :meth:`to_dict` when absent, so untraced
        runs serialize exactly as before.
    final_residual:
        Last entry of the history.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    restarts: int
    residual_history: list = field(default_factory=list)
    diagnostics: list = field(default_factory=list)
    trace: dict | None = field(default=None, compare=False)

    @property
    def final_residual(self) -> float:
        if not self.residual_history:
            return float("nan")
        return float(self.residual_history[-1])

    def to_dict(self, include_x: bool = False) -> dict:
        """JSON-serializable summary of the solve.

        The solution vector is omitted unless ``include_x`` is set (it
        dominates the payload and most records only need convergence
        data).  Consumed by the benchmark emitters and ``repro solve
        --json``.
        """
        out = {
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "restarts": int(self.restarts),
            "final_residual": float(self.final_residual),
            "residual_history": [float(r) for r in self.residual_history],
            "diagnostics": [
                e.to_dict() if hasattr(e, "to_dict") else dict(e)
                for e in self.diagnostics
            ],
        }
        if include_x:
            out["x"] = np.asarray(self.x).tolist()
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    def __repr__(self) -> str:
        extra = (
            f", diagnostics={len(self.diagnostics)}" if self.diagnostics else ""
        )
        return (
            f"SolveResult(converged={self.converged}, "
            f"iterations={self.iterations}, restarts={self.restarts}, "
            f"final_residual={self.final_residual:.3e}{extra})"
        )
