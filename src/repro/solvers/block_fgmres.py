"""Sequential multi-RHS flexible GMRES over ``(n, k)`` blocks.

The batched counterpart of :func:`repro.solvers.fgmres.fgmres`: all ``k``
right-hand sides advance through one shared Arnoldi recurrence, so every
matvec and preconditioner application is a single SpMM over the whole
block — ``k`` solves cost ``k``-column kernel sweeps instead of ``k``
Python-level iteration loops.  Each column keeps its own Givens
least-squares problem, convergence monitor, and residual history, so the
per-column numerics mirror a single-RHS solve (identical up to summation
order: the single-RHS path reduces dot products through BLAS ``dot``
while the block path reduces per column over the block, so histories
agree to rounding, not bitwise).

Zero allocations per iteration in steady state: the basis ``V``
(``(restart+1, n, k)``), the preconditioned block ``Z``, and all scratch
blocks are preallocated once per solve and reused across restart cycles;
Gram-Schmidt runs through ufunc ``out=`` reductions and the
matvec/preconditioner write into workspace blocks whenever they accept
``out=``.  Finished columns are masked (their basis columns are zeroed,
so they ride along as inert zero columns) rather than compacted, keeping
the workspaces fixed-size.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import NULL_TRACER
from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult
from repro.sparse.kernels import accepts_out


def _identity_precond(v: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    if out is not None:
        out[:] = v
        return out
    return v.copy()


def fgmres_block(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
    tracer=None,
) -> list:
    """Solve ``A x_c = b_c`` for every column of ``b``; one
    :class:`SolveResult` per column.

    Parameters mirror :func:`repro.solvers.fgmres.fgmres` with two batched
    requirements: ``matvec`` must accept ``(n, k)`` blocks (an SpMM such as
    :meth:`repro.sparse.csr.CSRMatrix.matmat`), and ``precond`` — when not
    None — must likewise map blocks to blocks (the polynomial
    preconditioners do, column-exactly).  ``b`` may be 1-D (treated as one
    column).  Convergence, breakdown, divergence, and ``max_iter`` are
    tracked per column; a finished column stops updating its history and
    monitor while the rest of the block keeps iterating.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 1:
        b = b.reshape(-1, 1)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n, k = b.shape
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if k == 0:
        return []
    if precond is None:
        precond = _identity_precond
    mv_out = accepts_out(matvec)
    pc_out = accepts_out(precond)
    if x0 is None:
        x = np.zeros((n, k))
    else:
        x = np.array(x0, dtype=np.float64).reshape(n, k)

    # Per-solve workspace, reused across all restart cycles.
    v = np.empty((restart + 1, n, k))
    z = np.empty((restart, n, k))
    w = np.empty((n, k))
    tmp = np.empty((n, k))
    r = np.empty((n, k))
    tmp_col = np.empty(n)
    hbuf = np.empty((restart + 1, k))
    colsq = np.empty(k)
    scale = np.empty(k)

    def residual() -> None:
        """r = b - A x, through the workspace when possible."""
        if mv_out:
            matvec(x, out=r)
        else:
            r[:] = matvec(x)
        np.subtract(b, r, out=r)

    residual()
    np.multiply(r, r, out=tmp)
    np.sum(tmp, axis=0, out=colsq)
    norm_r0 = np.sqrt(colsq)  # one-time (k,) allocation

    histories = [[1.0] for _ in range(k)]
    monitors = [ConvergenceMonitor(tol) for _ in range(k)]
    iters = [0] * k
    n_restarts = [0] * k
    converged = [False] * k
    zero_col = [False] * k
    bad_init = [False] * k
    active: list = []
    for c in range(k):
        if norm_r0[c] == 0.0:
            zero_col[c] = True
            converged[c] = True
        elif not monitors[c].check_finite(
            float(norm_r0[c]), 0, "initial residual"
        ):
            bad_init[c] = True
        else:
            active.append(c)

    beta = norm_r0.copy()
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    cycle_no = 0
    while active:
        cycle_no += 1
        if traced:
            trc.begin("cycle", "solver", cycle=cycle_no, k=len(active))
        participants = list(active)
        for c in participants:
            n_restarts[c] += 1
        scale[:] = 0.0
        for c in participants:
            scale[c] = 1.0 / beta[c]
        np.multiply(r, scale, out=v[0])
        lsqs = {c: GivensLSQ(restart, float(beta[c])) for c in participants}
        claimed = {c: False for c in participants}
        broke = {c: False for c in participants}
        cols = list(participants)
        j = 0
        while j < restart and cols:
            cols = [c for c in cols if iters[c] < max_iter]
            if not cols:
                break
            if traced:
                trc.begin("arnoldi_step", "solver", j=j, k=len(cols))
                trc.begin("precond_apply", "solver")
            if pc_out:
                precond(v[j], out=z[j])
            else:
                z[j][:] = precond(v[j])
            if traced:
                trc.end()
                trc.begin("matvec", "solver")
            if mv_out:
                matvec(z[j], out=w)
            else:
                w[:] = matvec(z[j])
            if traced:
                trc.end()
                trc.begin("orthogonalize", "solver")
            h = hbuf[: j + 2]
            # Classical Gram-Schmidt, per column: all coefficients off the
            # unmodified w (ufunc reductions into the h rows — no BLAS, no
            # allocations), then the batched correction sweep.
            for i in range(j + 1):
                np.multiply(v[i], w, out=tmp)
                np.sum(tmp, axis=0, out=h[i])
            for i in range(j + 1):
                np.multiply(v[i], h[i], out=tmp)
                np.subtract(w, tmp, out=w)
            np.multiply(w, w, out=tmp)
            np.sum(tmp, axis=0, out=colsq)
            np.sqrt(np.maximum(colsq, 0.0, out=colsq), out=h[j + 1])
            if traced:
                trc.end()  # orthogonalize
                trc.begin("givens_update", "solver")

            for c in list(cols):
                mon = monitors[c]
                hcol = h[:, c]
                if not mon.check_finite(hcol, iters[c] + 1, "Hessenberg column"):
                    cols.remove(c)
                    continue
                res = lsqs[c].append_column(hcol)
                iters[c] += 1
                rel = res / norm_r0[c]
                histories[c].append(rel)
                if not mon.check_divergence(rel, iters[c]):
                    cols.remove(c)
                    continue
                if rel <= tol:
                    claimed[c] = True
                    cols.remove(c)
                    continue
                if h[j + 1, c] <= breakdown_tol:
                    # Possible happy breakdown — confirmed against the
                    # recomputed true residual below, never trusted.
                    mon.note_breakdown(float(h[j + 1, c]), iters[c])
                    broke[c] = True
                    cols.remove(c)

            if traced:
                trc.end()  # givens_update
            # Normalize the still-iterating columns; finished columns get
            # zero basis columns and ride along inert (their z and w
            # columns stay exactly zero from here on).
            scale[:] = 0.0
            for c in cols:
                scale[c] = 1.0 / h[j + 1, c]
            np.multiply(w, scale, out=v[j + 1])
            j += 1
            if traced:
                trc.end()  # arnoldi_step

        # Solution update for every cycle participant from its own Givens
        # problem (lengths differ when columns exited mid-cycle).
        for c in participants:
            y = lsqs[c].solve()
            xcol = x[:, c]
            for i, yi in enumerate(y):
                np.multiply(z[i, :, c], yi, out=tmp_col)
                np.add(xcol, tmp_col, out=xcol)

        residual()
        np.multiply(r, r, out=tmp)
        np.sum(tmp, axis=0, out=colsq)
        np.sqrt(colsq, out=beta)
        for c in participants:
            mon = monitors[c]
            beta_c = float(beta[c])
            if not mon.check_finite(beta_c, iters[c], "recomputed residual"):
                continue
            true_rel = beta_c / norm_r0[c]
            if true_rel <= tol:
                converged[c] = True
            elif claimed[c]:
                converged[c] = mon.confirm_convergence(true_rel, iters[c])
            elif broke[c]:
                mon.confirm_breakdown(true_rel, iters[c])
            if not converged[c]:
                mon.cycle_end(true_rel, iters[c])

        active = [
            c for c in participants
            if not (converged[c] or monitors[c].fatal or iters[c] >= max_iter)
        ]
        if traced:
            trc.end()  # cycle

    results = []
    for c in range(k):
        if zero_col[c]:
            results.append(
                SolveResult(
                    np.ascontiguousarray(x[:, c]), True, 0, 0, histories[c]
                )
            )
            continue
        if bad_init[c]:
            results.append(
                SolveResult(
                    np.ascontiguousarray(x[:, c]), False, 0, 0, histories[c],
                    monitors[c].finalize(False, 0, 1.0),
                )
            )
            continue
        final_rel = histories[c][-1] if histories[c] else float("nan")
        results.append(
            SolveResult(
                np.ascontiguousarray(x[:, c]),
                converged[c],
                iters[c],
                n_restarts[c],
                histories[c],
                monitors[c].finalize(converged[c], iters[c], final_rel),
            )
        )
    return results
