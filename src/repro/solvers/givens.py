"""Incremental Givens-rotation least squares for the Arnoldi Hessenberg
system.

GMRES-family solvers need, at every step ``j``, the solution of

.. math:: y_j = \\arg\\min_y \\|\\beta e_1 - \\bar H_j y\\|_2

(Algorithm 1, step 13).  Applying one Givens rotation per step keeps the
Hessenberg matrix upper triangular, makes the current residual norm
available for free as ``|g[j+1]|`` — the quantity the convergence histories
plot — and needs only scalar work that is identical on every rank of a
distributed run (so it adds no communication).
"""

from __future__ import annotations

import numpy as np


class GivensLSQ:
    """Progressive solution of the Arnoldi least-squares problem.

    Parameters
    ----------
    max_dim:
        Maximum Krylov dimension (the restart length).
    beta:
        Initial residual norm (right-hand side ``beta * e_1``).
    """

    def __init__(self, max_dim: int, beta: float):
        self.max_dim = int(max_dim)
        self.r = np.zeros((self.max_dim + 1, self.max_dim))
        self.g = np.zeros(self.max_dim + 1)
        self.g[0] = float(beta)
        self.cos = np.zeros(self.max_dim)
        self.sin = np.zeros(self.max_dim)
        self.size = 0

    def append_column(self, h: np.ndarray) -> float:
        """Insert Hessenberg column ``h[0..j+1]`` for step ``j = size``.

        Applies the previous rotations to the new column, generates the
        rotation annihilating ``h[j+1]``, and returns the updated residual
        norm ``|g[j+1]|``.
        """
        j = self.size
        if j >= self.max_dim:
            raise RuntimeError("least-squares system is full; restart needed")
        h = np.asarray(h, dtype=np.float64)
        if h.shape != (j + 2,):
            raise ValueError(f"expected column of length {j + 2}")
        col = h.copy()
        for i in range(j):
            c, s = self.cos[i], self.sin[i]
            temp = c * col[i] + s * col[i + 1]
            col[i + 1] = -s * col[i] + c * col[i + 1]
            col[i] = temp
        denom = np.hypot(col[j], col[j + 1])
        if denom == 0.0:
            c, s = 1.0, 0.0
        else:
            c, s = col[j] / denom, col[j + 1] / denom
        self.cos[j], self.sin[j] = c, s
        self.r[: j + 1, j] = col[: j + 1]
        self.r[j, j] = denom
        self.g[j + 1] = -s * self.g[j]
        self.g[j] = c * self.g[j]
        self.size = j + 1
        return abs(float(self.g[j + 1]))

    @property
    def residual_norm(self) -> float:
        """Current least-squares residual, equal to ``||b - A x_j||_2`` of
        the outer iteration (in exact arithmetic)."""
        return abs(float(self.g[self.size]))

    def solve(self) -> np.ndarray:
        """Back-substitute for the coefficient vector ``y`` of the current
        dimension."""
        k = self.size
        if k == 0:
            return np.zeros(0)
        y = np.zeros(k)
        for i in range(k - 1, -1, -1):
            s = self.g[i] - self.r[i, i + 1 : k] @ y[i + 1 : k]
            rii = self.r[i, i]
            if rii == 0.0:
                raise np.linalg.LinAlgError(
                    "singular Hessenberg system (lucky breakdown should have "
                    "been handled by the caller)"
                )
            y[i] = s / rii
        return y
