"""Sequential Krylov solvers.

:func:`fgmres` is the paper's Algorithm 1 — flexible GMRES with restart,
where the preconditioner may change between iterations (which is what
allows polynomial preconditioners to be applied as an inner iteration).
Plain left-preconditioned :func:`gmres` and preconditioned :func:`cg` are
included as baselines, plus the Givens-rotation least-squares machinery
shared by the distributed implementations in :mod:`repro.core`.
"""

from repro.solvers.result import SolveResult
from repro.solvers.givens import GivensLSQ
from repro.solvers.fgmres import fgmres
from repro.solvers.gmres import gmres
from repro.solvers.cg import cg
from repro.solvers.bicgstab import bicgstab
from repro.solvers.adaptive import adaptive_fgmres
from repro.solvers.minres import minres

__all__ = ["SolveResult", "GivensLSQ", "fgmres", "gmres", "cg", "bicgstab", "adaptive_fgmres", "minres"]
