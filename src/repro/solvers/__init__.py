"""Sequential Krylov solvers.

:func:`fgmres` is the paper's Algorithm 1 — flexible GMRES with restart,
where the preconditioner may change between iterations (which is what
allows polynomial preconditioners to be applied as an inner iteration).
Plain left-preconditioned :func:`gmres` and preconditioned :func:`cg` are
included as baselines, plus the Givens-rotation least-squares machinery
shared by the distributed implementations in :mod:`repro.core`.

All Krylov drivers are hardened through a shared
:class:`~repro.solvers.diagnostics.ConvergenceMonitor`: non-finite
guards, divergence/stagnation detection and true-residual confirmation
of claimed convergence, surfaced as structured
:class:`~repro.solvers.diagnostics.DiagnosticEvent` entries on
:attr:`SolveResult.diagnostics`.
"""

from repro.solvers.result import SolveResult
from repro.solvers.diagnostics import (
    EVENT_KINDS,
    ConvergenceMonitor,
    DiagnosticEvent,
)
from repro.solvers.givens import GivensLSQ
from repro.solvers.fgmres import fgmres
from repro.solvers.block_fgmres import fgmres_block
from repro.solvers.gmres import gmres
from repro.solvers.cg import cg
from repro.solvers.bicgstab import bicgstab
from repro.solvers.adaptive import adaptive_fgmres
from repro.solvers.minres import minres

__all__ = [
    "SolveResult",
    "DiagnosticEvent",
    "ConvergenceMonitor",
    "EVENT_KINDS",
    "GivensLSQ",
    "fgmres",
    "fgmres_block",
    "gmres",
    "cg",
    "bicgstab",
    "adaptive_fgmres",
    "minres",
]
