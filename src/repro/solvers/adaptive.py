"""Adaptive-window GLS-preconditioned FGMRES.

The Fig. 10 experiment shows the GLS window matters: the universal
post-scaling window ``(eps, 1)`` is safe but loose.  This solver exploits
FGMRES's defining freedom — the preconditioner may change between cycles —
to bootstrap a sharper window from the solve itself:

1. The first restart cycle runs *unpreconditioned*; its Arnoldi Hessenberg
   matrix yields Ritz values approximating the extreme eigenvalues of the
   (scaled) operator.
2. A GLS polynomial is built on the Ritz window, padded upward because
   Ritz values approach the spectrum from inside and an *under*-estimated
   window is fatal (Fig. 10's divergent case), and every later cycle runs
   with it.

This is an "optional/extension" feature beyond the paper: the paper builds
its window once from Theorem 1; here the window tightens for free.
"""

from __future__ import annotations

import numpy as np

from repro.precond.gls import GLSPolynomial
from repro.solvers.fgmres import fgmres
from repro.solvers.result import SolveResult
from repro.spectrum.intervals import SpectrumIntervals


def _ritz_values(matvec, r0: np.ndarray, m: int):
    """Arnoldi Ritz values from an ``m``-step cycle started at ``r0``."""
    n = len(r0)
    m = min(m, n)
    v = np.zeros((m + 1, n))
    h = np.zeros((m + 1, m))
    beta = np.linalg.norm(r0)
    if beta == 0:
        raise ValueError("zero start vector")
    v[0] = r0 / beta
    k = m
    for j in range(m):
        w = matvec(v[j])
        for i in range(j + 1):
            h[i, j] = v[i] @ w
            w = w - h[i, j] * v[i]
        # Second orthogonalization pass: Arnoldi without it produces
        # spurious near-zero Ritz values on symmetric operators, which
        # would wreck the window's lower end.
        for i in range(j + 1):
            corr = v[i] @ w
            h[i, j] += corr
            w = w - corr * v[i]
        h[j + 1, j] = np.linalg.norm(w)
        if h[j + 1, j] < 1e-14:
            k = j + 1
            break
        v[j + 1] = w / h[j + 1, j]
    ritz = np.linalg.eigvals(h[:k, :k])
    return np.real(ritz)


def adaptive_fgmres(
    matvec,
    b: np.ndarray,
    degree: int = 7,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    probe_dim: int | None = None,
    hi_pad: float = 1.10,
    lo_shrink: float = 0.5,
):
    """Solve a (scaled, SPD) system with a self-tuned GLS window.

    Returns ``(SolveResult, SpectrumIntervals)`` — the result and the
    window actually used.  ``probe_dim`` is the Arnoldi dimension of the
    probing cycle (defaults to ``restart``); ``hi_pad``/``lo_shrink``
    widen the Ritz window outward on both ends.
    """
    b = np.asarray(b, dtype=np.float64)
    probe_dim = restart if probe_dim is None else probe_dim
    ritz = _ritz_values(matvec, b, probe_dim)
    positive = ritz[ritz > 0]
    if len(positive) == 0:
        raise ValueError(
            "no positive Ritz values; is the operator scaled and SPD?"
        )
    lo = float(positive.min()) * lo_shrink
    hi = float(positive.max()) * hi_pad
    theta = SpectrumIntervals.single(max(lo, 1e-14), hi)
    g = GLSPolynomial(theta, degree)
    result = fgmres(
        matvec,
        b,
        lambda v: g.apply_linear(matvec, v),
        restart=restart,
        tol=tol,
        max_iter=max_iter,
    )
    # Account for the probing cycle in the iteration count so comparisons
    # against fixed-window runs stay fair.
    result = SolveResult(
        x=result.x,
        converged=result.converged,
        iterations=result.iterations + probe_dim,
        restarts=result.restarts + 1,
        residual_history=result.residual_history,
    )
    return result, theta
