"""MINRES — minimal residual iteration for symmetric (indefinite) systems.

The natural partner of the union-interval GLS preconditioner: GMRES works
for any matrix but pays growing orthogonalization costs, while MINRES
exploits symmetry with a three-term Lanczos recurrence — constant work and
storage per iteration.  Preconditioning must be symmetric positive
definite (a GLS polynomial on a window with :math:`\\lambda P(\\lambda)>0`
qualifies even when :math:`A` itself is indefinite).

Implementation: standard Lanczos + two Givens rotations per step on the
tridiagonal least-squares problem (Paige & Saunders).

Hardened with a :class:`repro.solvers.diagnostics.ConvergenceMonitor`:
NaN/Inf in the Lanczos scalars or the residual estimate aborts the solve
with a ``non_finite`` event (never a silent ``max_iter`` loop), a dead
rotation (``rho == 0``) or an early Lanczos ``beta`` collapse that does
*not* coincide with convergence is a ``breakdown`` event, and
divergence/stagnation terminate early.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.result import SolveResult

#: Iterations per stagnation-bookkeeping window.
_CYCLE = 25


def minres(
    matvec,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-6,
    max_iter: int = 10_000,
) -> SolveResult:
    """Solve symmetric ``A x = b`` (definite or indefinite) by MINRES.

    The residual history tracks the recurrence estimate of
    ``||r_i||/||r_0||`` (exact in exact arithmetic).
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x)
    beta = float(np.linalg.norm(r))
    history = [1.0]
    norm_b = float(np.linalg.norm(b))
    if beta == 0.0 or (norm_b > 0 and beta <= tol * norm_b):
        return SolveResult(x, True, 0, 0, history)
    norm_r0 = beta
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(beta, 0, "initial residual"):
        return SolveResult(
            x, False, 0, 0, history, monitor.finalize(False, 0, 1.0)
        )

    v_prev = np.zeros(n)
    v = r / beta
    # Search-direction recurrence state.
    d_prev = np.zeros(n)
    d_prev2 = np.zeros(n)
    # Givens state.
    c_prev, s_prev = 1.0, 0.0
    c_prev2, s_prev2 = 1.0, 0.0
    eta = beta
    beta_prev = beta
    converged = False
    iters = 0
    while iters < max_iter:
        # Lanczos step.
        w = matvec(v)
        alpha = float(v @ w)
        w = w - alpha * v - beta_prev * v_prev
        beta_next = float(np.linalg.norm(w))
        if not monitor.check_finite(
            (alpha, beta_next), iters + 1, "Lanczos scalars"
        ):
            break

        # Apply the two previous rotations to the new tridiagonal column.
        delta = c_prev * alpha - c_prev2 * s_prev * beta_prev
        gamma2 = s_prev * alpha + c_prev2 * c_prev * beta_prev
        gamma3 = s_prev2 * beta_prev

        # New rotation annihilating beta_next.
        rho = np.hypot(delta, beta_next)
        if rho == 0.0:
            monitor.record(
                "breakdown", iters + 1,
                "Givens rotation collapsed (rho = 0)",
            )
            break
        c, s = delta / rho, beta_next / rho

        d = (v - gamma2 * d_prev - gamma3 * d_prev2) / rho
        x = x + (c * eta) * d
        iters += 1
        eta = -s * eta
        rel = abs(eta) / norm_r0
        history.append(rel)
        if not monitor.check_finite(rel, iters, "residual estimate"):
            break
        if rel <= tol:
            converged = True
            break
        if not monitor.check_divergence(rel, iters):
            break
        if beta_next < 1e-15:
            # Lanczos collapse without convergence: in exact arithmetic
            # the residual estimate would be ~0 here, so a large ``rel``
            # means the recurrence lost its way — report it instead of
            # silently returning an unconverged x.
            monitor.record(
                "breakdown", iters,
                f"Lanczos beta collapsed ({beta_next:.3e}) at residual "
                f"estimate {rel:.3e} > tol",
            )
            break
        if iters % _CYCLE == 0:
            monitor.cycle_end(rel, iters)
            if monitor.fatal:
                break
        v_prev, v = v, w / beta_next
        beta_prev = beta_next
        d_prev2, d_prev = d_prev, d
        c_prev2, s_prev2 = c_prev, s_prev
        c_prev, s_prev = c, s
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        x, converged, iters, 0, history,
        monitor.finalize(converged, iters, final_rel),
    )
