"""Preconditioned conjugate gradients.

Not used by the paper's experiments (GMRES is chosen for generality to
unsymmetric systems) but included as the natural SPD baseline for the
ablation benches: every system in the evaluation *is* SPD, so CG bounds
what a symmetric-aware solver could do with the same preconditioners.

Hardened with the same :class:`repro.solvers.diagnostics.ConvergenceMonitor`
as the GMRES family: NaN/Inf in any recurrence scalar aborts immediately
(never a silent ``max_iter`` loop on poisoned iterates), ``p.Ap <= 0`` and
an exactly-zero ``r.z`` are reported as ``breakdown`` events instead of
dividing by zero, divergence is fatal, and stagnation is tracked over
25-iteration pseudo-cycles.  Healthy runs are bit-identical with and
without the monitor.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.result import SolveResult

#: Iterations per stagnation-bookkeeping window (CG has no restarts, so
#: the monitor's cycle logic runs on fixed-size pseudo-cycles).
_CYCLE = 25


def cg(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    tol: float = 1e-6,
    max_iter: int = 10_000,
) -> SolveResult:
    """Solve SPD ``A x = b`` by preconditioned CG.

    ``precond`` must be symmetric positive definite (polynomial
    preconditioners on a positive spectrum window qualify).  Convergence is
    on the true residual ``||r_i||/||r_0||`` for comparability with the
    GMRES histories.  Anomalies (non-finite values, non-SPD breakdown,
    divergence, stagnation) terminate the solve early with structured
    events in ``SolveResult.diagnostics``.
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if precond is None:
        precond = lambda v: v.copy()  # noqa: E731 - trivial identity
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x)
    norm_r0 = float(np.linalg.norm(r))
    history = [1.0]
    if norm_r0 == 0.0:
        return SolveResult(x, True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_r0, 0, "initial residual"):
        return SolveResult(
            x, False, 0, 0, history, monitor.finalize(False, 0, 1.0)
        )
    z = precond(r)
    rz = float(r @ z)
    if not monitor.check_finite(rz, 0, "initial r.z inner product"):
        return SolveResult(
            x, False, 0, 0, history, monitor.finalize(False, 0, 1.0)
        )
    p = z.copy()
    converged = False
    iters = 0
    while iters < max_iter:
        ap = matvec(p)
        pap = float(p @ ap)
        # Finiteness first: NaN slips through the <= comparison below.
        if not monitor.check_finite(pap, iters + 1, "p.Ap inner product"):
            break
        if pap <= 0.0:
            # Not SPD (or breakdown): report honestly and stop.
            monitor.record(
                "breakdown",
                iters + 1,
                f"p.Ap = {pap:.3e} is not positive (operator or "
                "preconditioner not SPD)",
            )
            break
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        iters += 1
        rel = float(np.linalg.norm(r)) / norm_r0
        history.append(rel)
        if not monitor.check_finite(rel, iters, "residual norm"):
            break
        if rel <= tol:
            converged = True
            break
        if not monitor.check_divergence(rel, iters):
            break
        if iters % _CYCLE == 0:
            monitor.cycle_end(rel, iters)
            if monitor.fatal:
                break
        z = precond(r)
        rz_new = float(r @ z)
        if not monitor.check_finite(rz_new, iters, "r.z inner product"):
            break
        if rz == 0.0:
            # beta = rz_new / rz would be a silent NaN.
            monitor.record(
                "breakdown", iters,
                "r.z collapsed to exactly zero; direction update undefined",
            )
            break
        p = z + (rz_new / rz) * p
        rz = rz_new
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        x, converged, iters, 0, history,
        monitor.finalize(converged, iters, final_rel),
    )
