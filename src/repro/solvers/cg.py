"""Preconditioned conjugate gradients.

Not used by the paper's experiments (GMRES is chosen for generality to
unsymmetric systems) but included as the natural SPD baseline for the
ablation benches: every system in the evaluation *is* SPD, so CG bounds
what a symmetric-aware solver could do with the same preconditioners.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.result import SolveResult


def cg(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    tol: float = 1e-6,
    max_iter: int = 10_000,
) -> SolveResult:
    """Solve SPD ``A x = b`` by preconditioned CG.

    ``precond`` must be symmetric positive definite (polynomial
    preconditioners on a positive spectrum window qualify).  Convergence is
    on the true residual ``||r_i||/||r_0||`` for comparability with the
    GMRES histories.
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if precond is None:
        precond = lambda v: v.copy()  # noqa: E731 - trivial identity
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x)
    norm_r0 = float(np.linalg.norm(r))
    history = [1.0]
    if norm_r0 == 0.0:
        return SolveResult(x, True, 0, 0, history)
    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    converged = False
    iters = 0
    while iters < max_iter:
        ap = matvec(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            # Not SPD (or breakdown): report divergence honestly.
            break
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        iters += 1
        rel = float(np.linalg.norm(r)) / norm_r0
        history.append(rel)
        if rel <= tol:
            converged = True
            break
        z = precond(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(x, converged, iters, 0, history)
