"""Sequential flexible GMRES with restart (Algorithm 1).

FGMRES differs from GMRES in that solution updates are built from the
*preconditioned* vectors ``z_j = C v_j`` (kept in ``Z``), so the
preconditioner may vary from step to step — the property the paper relies
on to plug in polynomial preconditioners "constructed at required stages".

The inner loop is allocation-free in steady state: the Krylov basis ``V``
(``(restart+1, n)``) and the preconditioned block ``Z`` are preallocated
once per solve and reused across restart cycles, Gram-Schmidt runs through
``np.dot(..., out=...)`` and in-place AXPYs, and the matvec/preconditioner
write into workspace rows whenever they accept ``out=`` (detected via
:func:`repro.sparse.kernels.accepts_out`; allocating callables still
work, just without the zero-allocation guarantee).

A :class:`repro.solvers.diagnostics.ConvergenceMonitor` guards every
iteration: NaN/Inf in the Hessenberg column or residual norms aborts the
solve, claimed convergence is verified against the true residual
recomputed at the restart boundary (and demoted on gross mismatch),
breakdowns are confirmed the same way instead of trusted, and stagnation
or divergence across restart cycles terminates early — all reported as
structured events in :attr:`SolveResult.diagnostics`.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import NULL_TRACER
from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult
from repro.sparse.kernels import accepts_out


def _identity_precond(v: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    if out is not None:
        out[:] = v
        return out
    return v.copy()


def fgmres(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
    tracer=None,
) -> SolveResult:
    """Solve ``A x = b`` with restarted flexible GMRES.

    Parameters
    ----------
    matvec:
        Callable ``v -> A v``; may accept ``out=`` for workspace reuse.
    b:
        Right-hand side.
    precond:
        Callable ``v -> z ~= A^{-1} v`` (the flexible preconditioner);
        identity when None.  May accept ``out=``.
    x0:
        Initial guess (zero when None).
    restart:
        Krylov subspace dimension ``m`` before restarting (the paper
        uses 25).
    tol:
        Convergence on ``||r_i||_2 / ||r_0||_2`` (the paper uses 1e-6).
    max_iter:
        Cap on total inner iterations.
    breakdown_tol:
        Happy-breakdown threshold on ``h_{j+1,j}``.
    tracer:
        Optional :class:`repro.obs.Tracer` recording per-cycle /
        per-step spans and a per-iteration ``rel_res`` metrics stream;
        None costs one hoisted bool check per site (the hot loop stays
        allocation-free).
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if precond is None:
        precond = _identity_precond
    mv_out = accepts_out(matvec)
    pc_out = accepts_out(precond)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    # Per-solve workspace, reused across all restart cycles.
    v = np.empty((restart + 1, n))
    z = np.empty((restart, n))
    w = np.empty(n)
    tmp = np.empty(n)
    r = np.empty(n)
    hcol = np.empty(restart + 1)

    def residual(into: np.ndarray) -> None:
        """into = b - A x, through the workspace when possible."""
        if mv_out:
            matvec(x, out=into)
        else:
            into[:] = matvec(x)
        np.subtract(b, into, out=into)

    residual(r)
    norm_r0 = float(np.linalg.norm(r))
    history = [1.0]
    if norm_r0 == 0.0:
        return SolveResult(x, True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_r0, 0, "initial residual"):
        return SolveResult(x, False, 0, 0, history, monitor.finalize(False, 0, 1.0))

    total_iters = 0
    restarts = 0
    converged = False
    beta = norm_r0
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    while not converged and total_iters < max_iter and not monitor.fatal:
        restarts += 1
        if traced:
            trc.begin("cycle", "solver", cycle=restarts)
        np.divide(r, beta, out=v[0])
        lsq = GivensLSQ(restart, beta)
        broke_down = False
        j = 0
        while j < restart and total_iters < max_iter:
            if traced:
                trc.begin("arnoldi_step", "solver", j=j)
                trc.begin("precond_apply", "solver")
            if pc_out:
                precond(v[j], out=z[j])
            else:
                z[j] = precond(v[j])
            if traced:
                trc.end()
                trc.begin("matvec", "solver")
            if mv_out:
                matvec(z[j], out=w)
            else:
                w[:] = matvec(z[j])
            if traced:
                trc.end()
                trc.begin("orthogonalize", "solver")
            h = hcol[: j + 2]
            # Classical Gram-Schmidt: all projections off the unmodified w,
            # matching the paper's listings (and its communication count).
            np.dot(v[: j + 1], w, out=h[: j + 1])
            np.dot(h[: j + 1], v[: j + 1], out=tmp)
            w -= tmp
            h[j + 1] = np.linalg.norm(w)
            if traced:
                trc.end()  # orthogonalize
            if not monitor.check_finite(h, total_iters + 1, "Hessenberg column"):
                if traced:
                    trc.end()  # arnoldi_step
                break
            if traced:
                trc.begin("givens_update", "solver")
            res = lsq.append_column(h)
            if traced:
                trc.end()
            total_iters += 1
            history.append(res / norm_r0)
            if traced:
                trc.metric(iteration=total_iters, rel_res=res / norm_r0)
            if not monitor.check_divergence(res / norm_r0, total_iters):
                if traced:
                    trc.end()
                break
            if res / norm_r0 <= tol:
                converged = True
                j += 1
                if traced:
                    trc.end()
                break
            if h[j + 1] <= breakdown_tol:
                # Possible happy breakdown: the Krylov space looks
                # invariant.  Do NOT trust the recurrence — update x and
                # let the recomputed true residual below decide, so a
                # corrupted "lucky" breakdown restarts instead of
                # returning a wrong answer as converged.
                monitor.note_breakdown(float(h[j + 1]), total_iters)
                broke_down = True
                j += 1
                if traced:
                    trc.end()
                break
            np.divide(w, h[j + 1], out=v[j + 1])
            j += 1
            if traced:
                trc.end()  # arnoldi_step
        y = lsq.solve()
        if len(y):
            np.dot(y, z[: len(y)], out=tmp)
            x += tmp
        residual(r)
        beta = float(np.linalg.norm(r))
        if not monitor.check_finite(beta, total_iters, "recomputed residual"):
            if traced:
                trc.end()  # cycle
            break
        true_rel = beta / norm_r0
        if traced:
            trc.metric(iteration=total_iters, true_rel=true_rel,
                       cycle=restarts)
        if true_rel <= tol:
            converged = True
        elif converged:
            # The recurrence claimed convergence; verify it against the
            # recomputed true residual and demote on gross disagreement.
            converged = monitor.confirm_convergence(true_rel, total_iters)
        elif broke_down:
            monitor.confirm_breakdown(true_rel, total_iters)
        if not converged:
            monitor.cycle_end(true_rel, total_iters)
        if traced:
            trc.end(true_rel=true_rel)  # cycle
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        x,
        converged,
        total_iters,
        restarts,
        history,
        monitor.finalize(converged, total_iters, final_rel),
    )
