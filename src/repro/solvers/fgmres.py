"""Sequential flexible GMRES with restart (Algorithm 1).

FGMRES differs from GMRES in that solution updates are built from the
*preconditioned* vectors ``z_j = C v_j`` (kept in ``Z``), so the
preconditioner may vary from step to step — the property the paper relies
on to plug in polynomial preconditioners "constructed at required stages".
"""

from __future__ import annotations

import numpy as np

from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult


def fgmres(
    matvec,
    b: np.ndarray,
    precond=None,
    x0: np.ndarray | None = None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
) -> SolveResult:
    """Solve ``A x = b`` with restarted flexible GMRES.

    Parameters
    ----------
    matvec:
        Callable ``v -> A v``.
    b:
        Right-hand side.
    precond:
        Callable ``v -> z ~= A^{-1} v`` (the flexible preconditioner);
        identity when None.
    x0:
        Initial guess (zero when None).
    restart:
        Krylov subspace dimension ``m`` before restarting (the paper
        uses 25).
    tol:
        Convergence on ``||r_i||_2 / ||r_0||_2`` (the paper uses 1e-6).
    max_iter:
        Cap on total inner iterations.
    breakdown_tol:
        Happy-breakdown threshold on ``h_{j+1,j}``.
    """
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(b)):
        raise ValueError("right-hand side contains NaN or Inf")
    n = len(b)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if precond is None:
        precond = lambda v: v.copy()  # noqa: E731 - trivial identity
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    r0 = b - matvec(x)
    norm_r0 = float(np.linalg.norm(r0))
    history = [1.0]
    if norm_r0 == 0.0:
        return SolveResult(x, True, 0, 0, history)

    total_iters = 0
    restarts = 0
    converged = False
    r = r0
    beta = norm_r0
    while not converged and total_iters < max_iter:
        restarts += 1
        v = np.zeros((restart + 1, n))
        z = np.zeros((restart, n))
        v[0] = r / beta
        lsq = GivensLSQ(restart, beta)
        j = 0
        while j < restart and total_iters < max_iter:
            z[j] = precond(v[j])
            w = matvec(z[j])
            h = np.empty(j + 2)
            # Classical Gram-Schmidt: all projections off the unmodified w,
            # matching the paper's listings (and its communication count).
            h[: j + 1] = v[: j + 1] @ w
            w = w - h[: j + 1] @ v[: j + 1]
            h[j + 1] = np.linalg.norm(w)
            res = lsq.append_column(h)
            total_iters += 1
            history.append(res / norm_r0)
            if res / norm_r0 <= tol:
                converged = True
                j += 1
                break
            if h[j + 1] <= breakdown_tol:
                # Happy breakdown: Krylov space is invariant; solution is
                # exact in the current subspace.
                converged = True
                j += 1
                break
            v[j + 1] = w / h[j + 1]
            j += 1
        y = lsq.solve()
        if len(y):
            x = x + y @ z[: len(y)]
        r = b - matvec(x)
        beta = float(np.linalg.norm(r))
        if beta / norm_r0 <= tol:
            converged = True
    return SolveResult(x, converged, total_iters, restarts, history)
