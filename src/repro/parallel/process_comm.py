"""Process-parallel communicator backend (``"process"``): escape the GIL.

:class:`ProcessComm` keeps the :class:`~repro.parallel.comm.Comm` contract
— bit-identical numerics, identical :class:`~repro.parallel.stats.CommStats`
— while moving the collective *data plane* onto a persistent pool of
spawned worker **processes**.  The division of labour follows from one
hard constraint: the per-rank closures solvers hand to ``run_ranks`` close
over rank-local numpy/CSR state and cannot cross a process boundary, so

* ``run_ranks`` bodies execute inline in the orchestrator (exactly like
  :class:`~repro.parallel.comm.VirtualComm` — same order, same bits),
* the backend-overridable data-movement hooks (``_gather_back``,
  ``_halo_fill``, ``_tree_reduce``) fan out to the workers through
  ``multiprocessing.shared_memory`` arenas: pure permutation copies and
  the fixed binary-tree reduction, zero-copy on the payload path, and
* *resident rank execution* (:mod:`repro.parallel.resident`) escapes the
  closure constraint for the solver hot loops: :meth:`resident_ship`
  streams each rank's CSR blocks to its owning worker once (keyed by a
  generation id, invalidated on pool respawn) and :meth:`run_rank_op`
  dispatches named operations — matvec, fused dots, orthogonalization,
  axpy batches — as small command descriptors that workers execute
  against the resident state, so only vectors cross process boundaries
  while all charging stays with the orchestrator.

Because the hooks move bytes but never change an arithmetic association,
and all charging/tracing stays in the shared base-class collectives,
results and counters are bit-identical to ``VirtualComm`` by
construction — the property suite in ``tests/parallel`` asserts it.

Pool lifecycle
--------------
The pool is **lazy** (first eligible dispatch spawns it) and **persistent**
(``ProcessComm.close()`` releases the comm's worker-side registration and
unlinks its shared-memory arena, but parks the processes for the next
communicator — spawning costs ~1 s, a per-solve price short-lived sessions
cannot pay).  ``shutdown_pool()`` drains the processes once no live
communicator borrows them; ``use_comm_backend("process")`` drains on exit,
and an ``atexit`` hook is the backstop.  A crashed or stalled worker
surfaces as a structured :class:`WorkerCrashedError` /
:class:`WorkerTimeoutError` within the per-call timeout instead of a hang,
and marks the pool broken; the next dispatch transparently respawns it.

Sequence protocol
-----------------
Every arena starts with a ``uint64`` sequence word.  The orchestrator
stamps it immediately before each data-plane dispatch and sends the same
number in the command; workers refuse a mismatch (stale or swapped
segment) and every reply echoes the sequence so the orchestrator can
detect out-of-phase workers.

Tuning environment variables (read at construction):

* ``REPRO_PROCESS_WORKERS`` — worker count cap (default: CPU count, at
  least 2 so the fan-out paths are exercised on single-core runners).
* ``REPRO_PROCESS_MIN_WORK`` — estimated scalar-op threshold below which
  a collective's data movement runs inline (default 32768; identical
  results either way, this only avoids paying a pipe round-trip on tiny
  vectors).
* ``REPRO_PROCESS_TIMEOUT`` — per-dispatch timeout in seconds (default
  120) after which a silent pool raises :class:`WorkerTimeoutError`.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.obs.tracer import timed_rank_body
from repro.parallel._process_worker import HEADER_BYTES, worker_main
from repro.parallel.comm import Comm, guard_nested_comm
from repro.parallel.env_knobs import read_float_env, read_int_env
from repro.partition.interface import SubdomainMap

_DEFAULT_MIN_WORK = 32768
_DEFAULT_TIMEOUT = 120.0


class ProcessPoolError(RuntimeError):
    """Base class of structured process-pool failures."""


class WorkerCrashedError(ProcessPoolError):
    """A worker process died (killed, segfaulted, OOM) mid-dispatch."""

    def __init__(self, worker: int, exitcode, op: str):
        self.worker = int(worker)
        self.exitcode = exitcode
        self.op = op
        super().__init__(
            f"comm worker {worker} died during {op!r} (exitcode "
            f"{exitcode}); the pool is marked broken and will respawn on "
            "the next dispatch"
        )


class WorkerTimeoutError(ProcessPoolError):
    """A worker failed to reply within the per-call timeout."""

    def __init__(self, worker: int, timeout: float, op: str):
        self.worker = int(worker)
        self.timeout = float(timeout)
        self.op = op
        super().__init__(
            f"comm worker {worker} did not reply to {op!r} within "
            f"{timeout:g}s; the pool is marked broken and will respawn on "
            "the next dispatch (tune REPRO_PROCESS_TIMEOUT)"
        )


class ProcessWorkerError(ProcessPoolError):
    """A worker raised while executing a command; carries its traceback."""

    def __init__(self, worker: int, op: str, remote_traceback: str):
        self.worker = int(worker)
        self.op = op
        self.remote_traceback = remote_traceback
        super().__init__(
            f"comm worker {worker} failed during {op!r}:\n{remote_traceback}"
        )


def _default_workers() -> int:
    """Worker cap from ``REPRO_PROCESS_WORKERS`` or the CPU count (min 2)."""
    env = os.environ.get("REPRO_PROCESS_WORKERS")
    if env and env.strip():
        return max(1, read_int_env("REPRO_PROCESS_WORKERS", 1))
    return max(2, os.cpu_count() or 1)


class _ProcessPool:
    """A persistent pool of spawned workers driven over per-worker pipes.

    One dispatch = broadcast a command tuple to every worker, then gather
    one reply per worker under a deadline, polling liveness so a killed
    worker is detected in ~50 ms rather than at the timeout.  ``lock``
    serializes whole dispatches (arena write + command + replies), so
    concurrent communicators sharing the pool take turns exactly like
    they do on the thread backend's ``_run_lock``.
    """

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        self.lock = threading.Lock()
        self.broken = False
        self._closed = False
        ctx = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        for w in range(n_workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=worker_main,
                args=(w, n_workers, child),
                name=f"repro-comm-proc-{w}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def run_cmd(self, cmd: tuple, timeout: float) -> list:
        """Broadcast ``cmd`` and gather all replies (caller holds ``lock``).

        Returns the per-worker payloads.  Raises the structured error
        taxonomy on crash/timeout/protocol mismatch and marks the pool
        broken so no later caller blocks on a dead pipe.
        """
        if self.broken or self._closed:
            raise ProcessPoolError(
                "process pool is broken or closed; dispatch should have "
                "acquired a fresh pool"
            )
        op, seq = cmd[0], cmd[1]
        for w, conn in enumerate(self._conns):
            try:
                conn.send(cmd)
            except (BrokenPipeError, OSError):
                # A worker that died since the last dispatch breaks the
                # pipe on send; surface it as the same named error the
                # receive path raises instead of a raw BrokenPipeError.
                self.broken = True
                raise WorkerCrashedError(w, self._procs[w].exitcode, op)
        deadline = time.monotonic() + timeout
        payloads = []
        errors = []
        for w, conn in enumerate(self._conns):
            while not conn.poll(0.05):
                if not self._procs[w].is_alive():
                    self.broken = True
                    raise WorkerCrashedError(w, self._procs[w].exitcode, op)
                if time.monotonic() > deadline:
                    self.broken = True
                    raise WorkerTimeoutError(w, timeout, op)
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                self.broken = True
                raise WorkerCrashedError(w, self._procs[w].exitcode, op)
            if reply[0] != seq:
                self.broken = True
                raise ProcessPoolError(
                    f"comm worker {w} replied out of sequence during "
                    f"{op!r}: got seq {reply[0]}, expected {seq}"
                )
            if reply[1] == "err":
                # Keep draining the other workers' replies before raising:
                # an undrained pipe would feed a stale reply to the next
                # dispatch and falsely break the pool.
                errors.append(ProcessWorkerError(w, op, reply[2]))
            else:
                payloads.append(reply[2])
        if errors:
            raise errors[0]
        return payloads

    def process_ids(self) -> list:
        return [p.pid for p in self._procs]

    def close(self) -> None:
        """Shut down all workers (graceful, then terminate); idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("shutdown", 0))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


# One shared pool per orchestrator process (mirrors thread_comm).  A
# ProcessComm only borrows it; live borrowers are tracked in a WeakSet so
# shutdown_pool() can refuse to pull workers out from under an open comm.
_pool_lock = threading.Lock()
_shared_pool: list = [None]
_live_comms: "weakref.WeakSet" = weakref.WeakSet()
_comm_ids = itertools.count(1)
#: Orchestrator-owned shared-memory segments by name; close()/regrowth
#: unlink eagerly, the atexit hook unlinks whatever is left.
_segments: dict = {}


def _acquire_pool(n_workers: int) -> _ProcessPool:
    """The process-wide pool, respawned when broken or too small."""
    with _pool_lock:
        pool = _shared_pool[0]
        if pool is None or pool.broken or pool.n_workers < n_workers:
            if pool is not None:
                pool.close()
            pool = _ProcessPool(n_workers)
            _shared_pool[0] = pool
        return pool


def shutdown_pool(force: bool = False) -> bool:
    """Drain the shared worker-process pool; idempotent.

    Without ``force`` the pool survives while any live (unclosed)
    :class:`ProcessComm` still borrows it.  Unlike the thread backend,
    ``ProcessComm.close()`` does **not** call this: spawning costs ~1 s
    per worker, so parked processes are reused across solves and drained
    here (``use_comm_backend`` exit, tests, atexit).  Returns True when
    the pool is down.
    """
    with _pool_lock:
        if not force and len(_live_comms):
            return False
        pool = _shared_pool[0]
        if pool is None:
            return True
        _shared_pool[0] = None
    pool.close()
    return True


def pool_process_count() -> int:
    """Worker processes currently alive in the shared pool (0 = drained);
    the observability hook the lifecycle tests assert against."""
    with _pool_lock:
        pool = _shared_pool[0]
        if pool is None:
            return 0
        return sum(p.is_alive() for p in pool._procs)


def _unlink_segment(name: str) -> None:
    shm = _segments.pop(name, None)
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


def _atexit_cleanup() -> None:  # pragma: no cover - interpreter shutdown
    shutdown_pool(force=True)
    for name in list(_segments):
        _unlink_segment(name)


atexit.register(_atexit_cleanup)


class ProcessComm(Comm):
    """Shared-memory process-parallel backend (``"process"``).

    Parameters
    ----------
    submap:
        DOF sharing structure (same as :class:`VirtualComm`).
    trace:
        Record per-message tuples in :attr:`message_log`.
    n_workers:
        Worker-process cap; defaults to ``REPRO_PROCESS_WORKERS`` or the
        CPU count.  Ranks beyond the cap are strided over the workers.
    min_dispatch_work:
        Estimated scalar-op threshold below which a collective's data
        movement runs inline (identical results, no pipe latency);
        defaults to ``REPRO_PROCESS_MIN_WORK`` or 32768.
    call_timeout:
        Seconds a dispatch may wait for worker replies before raising
        :class:`WorkerTimeoutError`; defaults to ``REPRO_PROCESS_TIMEOUT``
        or 120.
    """

    backend_name = "process"

    def __init__(
        self,
        submap: SubdomainMap,
        trace: bool = False,
        n_workers: int | None = None,
        min_dispatch_work: int | None = None,
        call_timeout: float | None = None,
    ):
        guard_nested_comm("process")
        super().__init__(submap, trace=trace)
        if n_workers is None:
            n_workers = _default_workers()
        self.n_workers = max(1, min(int(n_workers), self.size))
        if min_dispatch_work is None:
            min_dispatch_work = read_int_env(
                "REPRO_PROCESS_MIN_WORK", _DEFAULT_MIN_WORK
            )
        self.min_dispatch_work = min_dispatch_work
        if call_timeout is None:
            call_timeout = read_float_env(
                "REPRO_PROCESS_TIMEOUT", _DEFAULT_TIMEOUT
            )
        self.call_timeout = call_timeout
        self._comm_id = next(_comm_ids)
        self._closed = False
        self._pool = None
        self._registered = False
        self._seq = 0
        self._arena = None
        self._arena_name = None
        self._arena_words = 0
        self._arena_gen = 0
        #: plan id -> (token, pinned plan, xsizes, ext_sizes); pinning the
        #: dict keeps ``id(plan)`` from being recycled under us.
        self._plans: dict = {}
        #: resident-state generation ids the current pool has received;
        #: cleared on pool respawn so engines re-ship transparently.
        self._resident_sent: set = set()
        _live_comms.add(self)

    # ------------------------------------------------------------------
    # Rank bodies: inline (closures cannot cross a process boundary)
    # ------------------------------------------------------------------
    def run_ranks(self, body, work: int | None = None) -> list:
        """Run ``body(rank)`` serially in the orchestrator, rank order.

        Identical to :class:`VirtualComm`: solver closures capture
        rank-local state that cannot be shipped to another process, so
        only the collectives' data plane (the hooks below) fans out.
        """
        if self.tracer.enabled:
            body = timed_rank_body(self.tracer, body)
        return [body(r) for r in range(self.size)]

    def barrier(self) -> None:
        """Synchronize the data plane: one ping round across the pool
        (no-op while the pool has not been started)."""
        if self._closed or self._pool is None or self._pool.broken:
            return
        with self._pool.lock:
            self._seq += 1
            self._pool.run_cmd(("ping", self._seq), self.call_timeout)

    # ------------------------------------------------------------------
    # Pool / arena plumbing
    # ------------------------------------------------------------------
    def _use_pool(self, work: int) -> bool:
        return (
            not self._closed
            and self.size > 1
            and work >= self.min_dispatch_work
        )

    def _ensure_pool(self) -> _ProcessPool:
        pool = _acquire_pool(self.n_workers)
        if pool is not self._pool:
            # Fresh (or respawned) pool: worker-side state is gone.
            self._pool = pool
            self._registered = False
            self._resident_sent.clear()
            for entry in self._plans.values():
                entry["sent"] = False
        return pool

    def _ensure_arena(self, total_words: int) -> np.ndarray:
        """Float64 payload view of an arena with >= ``total_words`` words,
        growing geometrically (new name per generation so workers detect
        the swap through the command's arena field)."""
        if self._arena is None or self._arena_words < total_words:
            new_words = max(int(total_words), 2 * self._arena_words, 1024)
            self._arena_gen += 1
            name = (
                f"repro-pc-{os.getpid()}-{self._comm_id}-{self._arena_gen}"
            )
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=HEADER_BYTES + 8 * new_words
            )
            if self._arena is not None:
                _unlink_segment(self._arena_name)
            self._arena = shm
            self._arena_name = name
            self._arena_words = new_words
            _segments[name] = shm
        return np.ndarray(
            (self._arena_words,),
            dtype=np.float64,
            buffer=self._arena.buf,
            offset=HEADER_BYTES,
        )

    def _stamp(self) -> int:
        """Advance and write the arena header sequence word."""
        self._seq += 1
        header = np.ndarray((2,), dtype=np.uint64, buffer=self._arena.buf)
        header[0] = self._seq
        return self._seq

    def _control(self, pool: _ProcessPool, op: str, *args) -> list:
        """Send a control command (no arena payload) to every worker."""
        self._seq += 1
        return pool.run_cmd(
            (op, self._seq, self._comm_id) + args, self.call_timeout
        )

    def _register(self, pool: _ProcessPool) -> None:
        if self._registered:
            return
        blob = pickle.dumps(
            {
                "l2g": [np.asarray(g) for g in self.submap.l2g],
                "sizes": [int(n) for n in self.submap.local_sizes],
            }
        )
        self._control(pool, "register", blob)
        self._registered = True

    def _charge_times(self, payloads: list) -> None:
        if not self.tracer.enabled:
            return
        pool = self._pool
        n_workers = pool.n_workers if pool is not None else 1
        for times in payloads:
            for r, dt in times:
                self.tracer.add_rank_time(int(r), float(dt))
                # Rank striding maps rank -> owning worker process.
                self.tracer.add_worker_time(int(r) % n_workers, float(dt))

    # ------------------------------------------------------------------
    # Data-movement hooks: shared-memory fan-out
    # ------------------------------------------------------------------
    def _gather_back(self, glob: np.ndarray, k: int | None) -> list:
        kk = 1 if k is None else int(k)
        n_global = self.submap.n_global
        sizes = self.submap.local_sizes
        work = n_global * kk
        if not self._use_pool(work):
            return super()._gather_back(glob, k)
        in_words = n_global * kk
        total_words = in_words + sum(sizes) * kk
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            view = self._ensure_arena(total_words)
            view[:in_words] = glob.ravel()
            seq = self._stamp()
            payloads = pool.run_cmd(
                (
                    "gather", seq, self._comm_id, self._arena_name,
                    kk, n_global, total_words,
                ),
                self.call_timeout,
            )
            out = []
            off = in_words
            for n in sizes:
                part = np.array(view[off:off + n * kk])
                out.append(part.reshape(n, kk) if k is not None else part)
                off += n * kk
        self._charge_times(payloads)
        return out

    def _halo_fill(
        self, x_parts: list, plan: dict, ext: list, total_words: int
    ) -> None:
        kk = ext[0].shape[1] if ext and ext[0].ndim == 2 else 1
        if not self._use_pool(total_words):
            return super()._halo_fill(x_parts, plan, ext, total_words)
        entry = self._plan_entry(
            plan,
            [int(np.shape(p)[0]) for p in x_parts],
            [int(np.shape(e)[0]) for e in ext],
        )
        if entry is None:  # shapes changed under a cached plan: stay inline
            return super()._halo_fill(x_parts, plan, ext, total_words)
        xsizes, ext_sizes = entry["xsizes"], entry["ext_sizes"]
        in_words = sum(xsizes) * kk
        arena_words = in_words + sum(ext_sizes) * kk
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            view = self._ensure_arena(arena_words)
            if not entry["sent"]:
                self._control(
                    pool, "plan", entry["token"], entry["blob"]
                )
                entry["sent"] = True
            off = 0
            for p in x_parts:
                view[off:off + p.size] = p.ravel()
                off += p.size
            seq = self._stamp()
            payloads = pool.run_cmd(
                (
                    "halo", seq, self._comm_id, self._arena_name,
                    entry["token"], kk, arena_words,
                ),
                self.call_timeout,
            )
            off = in_words
            for buf in ext:
                flat = view[off:off + buf.size]
                buf[...] = flat.reshape(buf.shape)
                off += buf.size
        self._charge_times(payloads)

    def _tree_reduce(self, vals: list, words: int):
        arr = np.asarray(vals)
        if (
            arr.dtype != np.float64
            or arr.ndim not in (1, 2)
            or arr.shape[0] != self.size
        ):
            return super()._tree_reduce(vals, words)
        m = 1 if arr.ndim == 1 else arr.shape[1]
        if not self._use_pool(self.size * m):
            return super()._tree_reduce(vals, words)
        total_words = (self.size + 1) * m
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            view = self._ensure_arena(total_words)
            view[:self.size * m] = arr.ravel()
            seq = self._stamp()
            payloads = pool.run_cmd(
                (
                    "reduce", seq, self._comm_id, self._arena_name,
                    self.size, m, total_words,
                ),
                self.call_timeout,
            )
            result = np.array(view[self.size * m:(self.size + 1) * m])
        self._charge_times(payloads)
        return result[0] if arr.ndim == 1 else result

    def _plan_entry(self, plan: dict, xsizes: list, ext_sizes: list):
        """Worker-shippable form of a halo plan, cached and pinned by
        ``id(plan)`` (plans are immutable for a system's lifetime).
        Returns None when the cached shapes no longer match the call."""
        entry = self._plans.get(id(plan))
        if entry is not None:
            if entry["xsizes"] != xsizes or entry["ext_sizes"] != ext_sizes:
                return None
            return entry
        ranks = []
        for s in range(self.size):
            ranks.append(
                [
                    (
                        int(t),
                        np.asarray(plan[t][s][0]),
                        np.asarray(recv_slots),
                    )
                    for t, (_, recv_slots) in plan[s].items()
                ]
            )
        entry = {
            "token": len(self._plans) + 1,
            "plan": plan,  # pin, so id(plan) stays unique while cached
            "xsizes": xsizes,
            "ext_sizes": ext_sizes,
            "blob": pickle.dumps(
                {"ranks": ranks, "xsizes": xsizes, "ext_sizes": ext_sizes}
            ),
            "sent": False,
        }
        self._plans[id(plan)] = entry
        return entry

    # ------------------------------------------------------------------
    # Resident rank execution (see repro.parallel.resident)
    # ------------------------------------------------------------------
    def resident_ship(self, gen: int, rank_states: list) -> None:
        """Stream per-rank resident solver state to its owning worker.

        ``rank_states[r]`` is ``{"kind", "arrays", "meta"}``; each array
        is laid into the shared-memory arena (8-byte integer arrays cross
        as raw float64 bytes via ``.view``) and described by a typed field
        table in the command, one dispatch per rank so the arena stays
        bounded by a single rank's footprint.  Shipping charges no
        CommStats: like the collective hooks it is transport, not
        modelled communication.
        """
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            for rank, st in enumerate(rank_states):
                self._ship_state(pool, st, {"gen": int(gen), "rank": rank})
        self._resident_sent.add(int(gen))

    def _ship_state(self, pool, st: dict, extra_meta: dict) -> None:
        """Lay one state's typed arrays into the arena and dispatch a
        ``resident`` command describing them (caller holds the pool lock)."""
        arrays = list(st["arrays"].items())
        fields = []
        off = 0
        for name, arr in arrays:
            fields.append(
                (name, str(arr.dtype), tuple(arr.shape), off)
            )
            off += int(arr.size)
        total_words = max(off, 1)
        view = self._ensure_arena(total_words)
        for (_nm, _dt, _shape, foff), (_name, arr) in zip(
            fields, arrays
        ):
            flat = np.ascontiguousarray(arr).reshape(-1)
            if flat.dtype != np.float64:
                flat = flat.view(np.float64)
            view[foff:foff + flat.size] = flat
        meta = dict(st.get("meta", {}))
        meta.update(extra_meta)
        meta.update(kind=st["kind"], fields=fields)
        seq = self._stamp()
        pool.run_cmd(
            (
                "resident", seq, self._comm_id, self._arena_name,
                total_words, meta,
            ),
            self.call_timeout,
        )

    def resident_ship_aux(self, gen: int, states: list) -> None:
        """Attach auxiliary solver state (preconditioner factors, coarse
        bases) to an already-shipped generation.

        Each state is ``{"kind": "aux"|"aux_shared", "arrays", "meta"}``;
        ``aux`` metas name an owning ``rank`` (only that rank's worker
        keeps it, under ``meta["key"]``), ``aux_shared`` metas broadcast
        to every worker (small redundant state such as a factorized
        coarse matrix).  A worker that has not seen the base generation
        raises, surfacing as the pool's named error taxonomy.  Like
        :meth:`resident_ship` this charges no CommStats: transport, not
        modelled communication.
        """
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            for st in states:
                self._ship_state(pool, st, {"gen": int(gen)})

    def resident_ship_plan(self, plan: dict, xsizes: list, ext_sizes: list):
        """Ship a halo plan for worker-side halo fills inside fused rank
        ops; returns the plan token, or None when a cached entry for this
        plan no longer matches the given sizes (caller stays inline)."""
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            entry = self._plan_entry(plan, list(xsizes), list(ext_sizes))
            if entry is None:
                return None
            if not entry["sent"]:
                self._control(pool, "plan", entry["token"], entry["blob"])
                entry["sent"] = True
            return entry["token"]

    def pool_width(self) -> int:
        """Worker count of the acquired pool (>= ``n_workers``: an
        existing wider pool is reused as-is).  Fused rank ops size their
        barrier flag region with this."""
        return self._ensure_pool().n_workers

    def resident_ready(self, gen: int) -> bool:
        """True when generation ``gen`` is resident in the current pool
        (acquiring the pool first, so a respawn invalidates honestly)."""
        self._ensure_pool()
        return int(gen) in self._resident_sent

    def run_rank_op(
        self, payload: dict, writes: list, reads: list, total_words: int
    ) -> list:
        """Dispatch one named rank operation against resident state.

        ``writes`` are ``(offset_words, array)`` inputs copied into the
        arena before the command; ``reads`` are ``(offset_words, n_words)``
        output segments copied back out after every worker replied.
        Pure transport — flops charging is the calling engine's job, so
        CommStats stay exactly equal to inline execution.
        """
        pool = self._ensure_pool()
        with pool.lock:
            self._register(pool)
            view = self._ensure_arena(max(total_words, 1))
            for off, arr in writes:
                flat = np.asarray(arr).reshape(-1)
                view[off:off + flat.size] = flat
            seq = self._stamp()
            payloads = pool.run_cmd(
                (
                    "rankop", seq, self._comm_id, self._arena_name,
                    max(total_words, 1), payload,
                ),
                self.call_timeout,
            )
            outs = [np.array(view[off:off + n]) for off, n in reads]
        self._charge_times(payloads)
        return outs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker-side state and unlink this comm's shared-memory
        arena; idempotent.  Worker *processes* stay parked for the next
        communicator (drain them with :func:`shutdown_pool`)."""
        if self._closed:
            return
        self._closed = True
        _live_comms.discard(self)
        pool = self._pool
        if pool is not None and self._registered and not pool.broken:
            try:
                with pool.lock:
                    self._control(pool, "release")
            except (ProcessPoolError, OSError):
                pass  # crashed pools cannot clean up; segments still unlink
        if self._arena is not None:
            _unlink_segment(self._arena_name)
            self._arena = None
            self._arena_name = None
            self._arena_words = 0
        self._plans.clear()
        self._resident_sent.clear()
        self._pool = None

    # Test hook: force a worker-side stall so the per-call timeout path
    # can be exercised deterministically (see the chaos stall suite).
    def _debug_stall(self, seconds: float, timeout: float | None = None):
        pool = self._ensure_pool()
        with pool.lock:
            self._seq += 1
            return pool.run_cmd(
                ("sleep", self._seq, float(seconds)),
                self.call_timeout if timeout is None else timeout,
            )
