"""The virtual communicator.

``VirtualComm`` plays the role MPI plays in the paper's C implementation.
The SPMD algorithms in :mod:`repro.core` are written exactly as the paper's
listings — per-rank local arrays, nearest-neighbour interface assemblies
``⊕Σ∂Ω``, halo scatter/gathers and allreduces — but all ranks live in one
process and collectives operate on the list of per-rank arrays at once.
This keeps execution deterministic while recording, per rank, precisely the
traffic a real MPI run would generate.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.stats import CommStats
from repro.partition.interface import SubdomainMap


class VirtualComm:
    """A P-rank communicator bound to a subdomain map.

    Parameters
    ----------
    submap:
        The EDD :class:`SubdomainMap` (used for interface assembly); RDD
        solvers use :meth:`halo_exchange` with explicit plans instead and
        may pass a map with empty sharing.
    """

    def __init__(self, submap: SubdomainMap, trace: bool = False):
        self.submap = submap
        self.size = submap.n_parts
        self.stats = CommStats(self.size)
        #: When tracing, every point-to-point message is appended as a
        #: ``(src, dst, words)`` tuple — the validation tests assert the
        #: symmetry properties a correct MPI exchange must have.
        self.trace = trace
        self.message_log: list = []

    # ------------------------------------------------------------------
    # Flop accounting (kernels call these; data ops happen elsewhere)
    # ------------------------------------------------------------------
    def add_flops(self, rank: int, n: int) -> None:
        """Charge ``n`` flops to ``rank``."""
        self.stats.ranks[rank].flops += int(n)

    def add_flops_all(self, per_rank) -> None:
        """Charge each rank its own flop count from a sequence."""
        for r, n in enumerate(per_rank):
            self.stats.ranks[r].flops += int(n)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def interface_assemble(self, parts: list) -> list:
        """The paper's ``⊕Σ∂Ω`` (Eq. 28): local-distributed -> global-distributed.

        Every subdomain adds its neighbours' contributions on shared DOFs.
        Implemented with a scatter-add through the global numbering (which
        yields exactly the assembled values), while communication is charged
        per neighbouring pair: one message of ``len(shared)`` words each way.
        Interface-DOF additions are also charged as flops.
        """
        submap = self.submap
        if len(parts) != self.size:
            raise ValueError("one part per rank required")
        glob = np.zeros(submap.n_global)
        for g, p in zip(submap.l2g, parts):
            np.add.at(glob, g, p)
        out = [glob[g].copy() for g in submap.l2g]
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, local_idx in submap.shared[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(local_idx)
                rs.flops += len(local_idx)  # one add per received word
                if self.trace:
                    self.message_log.append((s, t, len(local_idx)))
        return out

    def allreduce_sum(self, values, words: int = 1):
        """Global sum reduction across ranks.

        ``values`` is a per-rank list of scalars or equal-length arrays;
        returns the elementwise sum (same on every rank, as MPI_Allreduce
        would).  Each rank is charged one reduction of ``words`` words.
        """
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        total = values[0]
        for v in values[1:]:
            total = total + v
        for r in self.stats.ranks:
            r.reductions += 1
            r.reduction_words += int(words)
        return total

    def halo_exchange(self, x_parts: list, plan: dict) -> list:
        """Row-partition halo scatter/gather (Eq. 48's first two steps).

        ``plan[s]`` maps neighbour rank ``t`` to ``(send_local_idx,
        recv_slots)``: rank ``s`` sends ``x_parts[s][send_local_idx]`` to
        ``t``; the values rank ``s`` *receives* from ``t`` land in its
        external buffer at positions ``recv_slots``.  Returns the per-rank
        external vectors.
        """
        if len(x_parts) != self.size:
            raise ValueError("one part per rank required")
        ext_sizes = [0] * self.size
        for s in range(self.size):
            for t, (_, recv_slots) in plan[s].items():
                ext_sizes[s] = max(
                    ext_sizes[s], (int(recv_slots.max()) + 1) if len(recv_slots) else 0
                )
        ext = [np.zeros(n) for n in ext_sizes]
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, (send_idx, _) in plan[s].items():
                payload = x_parts[s][send_idx]
                _, recv_slots = plan[t][s]
                ext[t][recv_slots] = payload
                rs.nbr_messages += 1
                rs.nbr_words += len(send_idx)
                if self.trace:
                    self.message_log.append((s, t, len(send_idx)))
        return ext

    def reset_stats(self) -> None:
        """Zero all counters (e.g. after setup, before the timed solve)."""
        self.stats.reset()
