"""Pluggable communicator backends.

The SPMD algorithms in :mod:`repro.core` are written exactly as the paper's
listings — per-rank local arrays, nearest-neighbour interface assemblies
``⊕Σ∂Ω``, halo scatter/gathers and allreduces — against the abstract
:class:`Comm` interface defined here.  Two backends implement it:

* :class:`VirtualComm` (``"virtual"``, the default) plays the role MPI
  plays in the paper's C implementation: all ranks live in one process and
  every rank body runs serially, which keeps execution deterministic while
  recording, per rank, precisely the traffic a real MPI run would generate.
* :class:`~repro.parallel.thread_comm.ThreadComm` (``"thread"``) dispatches
  the same per-rank bodies onto a persistent pool of worker threads with a
  real cross-thread barrier, so the P subdomain kernels genuinely run
  concurrently whenever the sparse kernel backend releases the GIL
  (scipy's C loops and numpy's ufunc inner loops both do).
* :class:`~repro.parallel.process_comm.ProcessComm` (``"process"``) escapes
  the GIL entirely: a persistent pool of spawned worker *processes* moves
  the collective payloads through ``multiprocessing.shared_memory``
  segments, while the per-rank closures (which cannot cross a process
  boundary) keep running in the orchestrator.
* :class:`~repro.parallel.chaos.ChaosComm` (``"chaos"``) proxies any of
  the above and injects deterministic message-level faults from a seeded
  :class:`~repro.parallel.chaos.FaultPlan` — the test seam proving the
  solvers never return a silently wrong answer when an exchange
  misbehaves.

All backends share the collective implementations in :class:`Comm` —
including the fixed-topology binary-tree allreduce — so a solve is
**bit-identical** across backends: same iteration counts, same residual
histories, same recorded counters.  The backend-specific part is isolated
in three overridable *data-movement hooks* (:meth:`Comm._gather_back`,
:meth:`Comm._halo_fill`, :meth:`Comm._tree_reduce`); the defaults express
the movement as :meth:`Comm.run_ranks` closures, and ``ProcessComm``
replaces them with shared-memory fan-out of exactly the same permutation
and reduction, so identity holds by construction.  Selection:
``make_comm(submap)`` consults ``set_comm_backend(name)`` / the
``REPRO_COMM_BACKEND`` environment variable (read at first use),
mirroring the kernel-backend registry in :mod:`repro.sparse.kernels`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

import numpy as np

from repro.obs.tracer import NULL_TRACER, timed_rank_body
from repro.parallel.stats import CommStats
from repro.partition.interface import SubdomainMap


class NestedCommError(RuntimeError):
    """Constructing a communicator inside a worker of another communicator.

    A rank body that builds its own :class:`ThreadComm`/``ProcessComm``
    would recursively enter the shared worker pool — a region that is
    already executing — which used to surface as an opaque hang.  The
    registry (:func:`make_comm`) and the pooled-backend constructors now
    detect the nesting and raise this named error instead.
    """


#: Thread-local marker set while a comm worker executes a rank body; the
#: ``backend`` attribute names the owning backend.  Worker *processes*
#: advertise themselves through the ``REPRO_COMM_WORKER`` environment
#: variable instead (set in the spawned child before any user code runs).
_WORKER_CTX = threading.local()


def current_worker_backend() -> str | None:
    """Backend name of the comm worker the caller runs inside, or None."""
    backend = getattr(_WORKER_CTX, "backend", None)
    if backend is not None:
        return backend
    return os.environ.get("REPRO_COMM_WORKER") or None


def guard_nested_comm(backend_name: str) -> None:
    """Raise :class:`NestedCommError` when called from inside a comm
    worker (the nested-pool footgun); no-op in the orchestrator."""
    inside = current_worker_backend()
    if inside is not None:
        raise NestedCommError(
            f"cannot construct a {backend_name!r} communicator inside a "
            f"{inside!r} comm worker: nested pools would re-enter a "
            "parallel region that is already executing.  Build the "
            "communicator in the orchestrator (outside run_ranks bodies) "
            "and close over it instead."
        )


class Comm:
    """Abstract P-rank communicator bound to a subdomain map.

    Subclasses supply the execution strategy through :meth:`run_ranks`
    (and optionally :meth:`barrier`); every collective defined here is
    expressed in terms of it plus deterministic orchestrator-side data
    movement, which is what guarantees backend-independent numerics.

    Parameters
    ----------
    submap:
        The EDD :class:`SubdomainMap` (used for interface assembly); RDD
        solvers use :meth:`halo_exchange` with explicit plans instead and
        may pass a map with empty sharing.
    trace:
        When tracing, every point-to-point message is appended to
        :attr:`message_log` as a ``(src, dst, words)`` tuple — the
        validation tests assert the symmetry properties a correct MPI
        exchange must have.
    """

    #: Registry name of the backend (``"virtual"``, ``"thread"``, ...).
    backend_name = "abstract"

    def __init__(self, submap: SubdomainMap, trace: bool = False):
        self.submap = submap
        self.size = submap.n_parts
        self.stats = CommStats(self.size)
        self.trace = trace
        self.message_log: list = []
        #: Span tracer (``repro.obs``).  Defaults to the shared
        #: :data:`~repro.obs.tracer.NULL_TRACER`, whose class-level
        #: ``enabled = False`` makes every per-collective guard a plain
        #: attribute load — the zero-cost-when-off contract.
        self.tracer = NULL_TRACER
        self._iface_counts_cache = None

    def set_tracer(self, tracer) -> None:
        """Attach (or with ``None`` detach) a span tracer.

        An enabled tracer receives one ``exchange``/``reduction`` span
        per collective (with message/word counts in its args) and
        per-rank busy time accumulated around every rank body.
        """
        self.tracer = NULL_TRACER if tracer is None else tracer
        if self.tracer.enabled:
            self.tracer.ensure_ranks(self.size)

    def _iface_counts(self) -> tuple:
        """Cached ``(messages, words)`` totals of one interface assembly.

        The subdomain map is immutable for the comm's lifetime, so the
        per-pair loop runs once, not per traced collective.
        """
        if self._iface_counts_cache is None:
            messages = words = 0
            for s in range(self.size):
                for local_idx in self.submap.shared[s].values():
                    messages += 1
                    words += len(local_idx)
            self._iface_counts_cache = (messages, words)
        return self._iface_counts_cache

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------
    def run_ranks(self, body, work: int | None = None) -> list:
        """Execute ``body(rank)`` once per rank; return the P results.

        This is the SPMD dispatch point: solver loops hand each rank's
        loop body to the backend as a closure.  Bodies MUST only touch
        rank-``r`` state (their slice of the part lists and
        ``stats.ranks[r]``) so that a concurrent backend needs no locks.
        ``work`` is an optional estimate of the total scalar operations
        across ranks; backends may run tiny bodies inline to avoid
        dispatch overhead (the results are identical either way).
        """
        raise NotImplementedError

    def barrier(self) -> None:
        """Synchronize all ranks.

        The serial backend is trivially synchronized; concurrent backends
        override this with a real cross-thread barrier.
        """

    def close(self) -> None:
        """Release backend resources (worker threads); idempotent."""

    def __enter__(self) -> "Comm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Flop accounting (kernels call these; data ops happen elsewhere)
    # ------------------------------------------------------------------
    def add_flops(self, rank: int, n: int) -> None:
        """Charge ``n`` flops to ``rank`` (disjoint per-rank update)."""
        self.stats.ranks[rank].flops += int(n)

    def add_flops_all(self, per_rank) -> None:
        """Charge each rank its own flop count from a sequence."""
        for r, n in enumerate(per_rank):
            self.stats.ranks[r].flops += int(n)

    # ------------------------------------------------------------------
    # Data-movement hooks (the only backend-overridable numerics-free part)
    # ------------------------------------------------------------------
    def _gather_back(self, glob: np.ndarray, k: int | None) -> list:
        """Gather the scatter-added global vector back per rank.

        The second half of ``⊕Σ∂Ω``: ``out[s] = glob[l2g[s]]`` — a pure
        permutation copy, so a backend may execute it anywhere (worker
        thread, worker process via shared memory) without perturbing a
        single bit.  ``k`` is the block width (None for vectors).
        """
        submap = self.submap
        out = [None] * self.size

        def gather(s: int) -> None:
            out[s] = glob[submap.l2g[s]].copy()

        work = submap.n_global * (1 if k is None else k)
        self.run_ranks(gather, work=work)
        return out

    def _halo_fill(
        self, x_parts: list, plan: dict, ext: list, total_words: int
    ) -> None:
        """Fill the preallocated external buffers of a halo exchange.

        Receiver-centric permutation copy: rank ``s`` writes
        ``ext[s][recv_slots] = x_parts[t][send_idx]`` for each neighbour.
        Handles vectors and ``(n, k)`` blocks alike (fancy indexing is
        row-wise either way).  Backends may relocate the copies freely —
        no arithmetic happens here.
        """

        def receive(s: int) -> None:
            buf = ext[s]
            for t, (_, recv_slots) in plan[s].items():
                send_idx, _ = plan[t][s]
                buf[recv_slots] = x_parts[t][send_idx]

        self.run_ranks(receive, work=total_words)

    def _tree_reduce(self, vals: list, words: int):
        """Combine per-rank values in fixed binary-tree order.

        The pairing ``(v0+v1)+(v2+v3)...`` a recursive-doubling MPI
        allreduce performs; every backend must reproduce this exact
        association (float addition is not associative) for results to
        stay bit-reproducible.
        """
        while len(vals) > 1:
            nxt = [vals[i] + vals[i + 1] for i in range(0, len(vals) - 1, 2)]
            if len(vals) % 2:
                nxt.append(vals[-1])
            vals = nxt
        return vals[0]

    # ------------------------------------------------------------------
    # Collectives (shared by all backends — deterministic by construction)
    # ------------------------------------------------------------------
    def interface_assemble(self, parts: list) -> list:
        """The paper's ``⊕Σ∂Ω`` (Eq. 28): local-distributed -> global-distributed.

        Every subdomain adds its neighbours' contributions on shared DOFs.
        Implemented with a scatter-add through the global numbering (which
        yields exactly the assembled values) followed by a per-rank
        gather-back dispatched through :meth:`run_ranks`; communication is
        charged per neighbouring pair: one message of ``len(shared)``
        words each way.  Interface-DOF additions are also charged as
        flops.
        """
        submap = self.submap
        if len(parts) != self.size:
            raise ValueError("one part per rank required")
        trc = self.tracer
        if trc.enabled:
            messages, words = self._iface_counts()
            trc.begin("interface_assemble", "exchange",
                      messages=messages, words=words)
        glob = np.zeros(submap.n_global)
        for g, p in zip(submap.l2g, parts):
            np.add.at(glob, g, p)
        out = self._gather_back(glob, k=None)
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, local_idx in submap.shared[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(local_idx)
                rs.flops += len(local_idx)  # one add per received word
                if self.trace:
                    self.message_log.append((s, t, len(local_idx)))
        if trc.enabled:
            trc.end()
        return out

    def interface_assemble_block(self, parts: list) -> list:
        """Batched ``⊕Σ∂Ω`` over ``(n_local, k)`` blocks — the k-RHS form.

        One call assembles all ``k`` columns at once, which is the point:
        a k-RHS Arnoldi step still costs **one** message per neighbouring
        pair (Algorithm 6's invariant holds per step, not per column),
        with the payload simply ``k`` times wider.  Charging reflects
        exactly that — ``nbr_messages`` counts as a single exchange while
        ``nbr_words``/``flops`` scale with ``k`` — so the coalescing win
        is visible in the modeled latency term.  Column ``c`` of the
        result is bit-identical to ``interface_assemble`` of column ``c``
        (same scatter-add order).
        """
        submap = self.submap
        if len(parts) != self.size:
            raise ValueError("one part per rank required")
        k = parts[0].shape[1]
        trc = self.tracer
        if trc.enabled:
            messages, words = self._iface_counts()
            trc.begin("interface_assemble", "exchange",
                      messages=messages, words=words * k, k=k)
        glob = np.zeros((submap.n_global, k))
        for g, p in zip(submap.l2g, parts):
            np.add.at(glob, g, p)
        out = self._gather_back(glob, k=k)
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, local_idx in submap.shared[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(local_idx) * k
                rs.flops += len(local_idx) * k
                if self.trace:
                    self.message_log.append((s, t, len(local_idx) * k))
        if trc.enabled:
            trc.end()
        return out

    def charge_interface_assemble(self) -> None:
        """Record exactly what :meth:`interface_assemble` records — tracer
        span, per-pair message/word/flop charges, message log — without
        moving any data.

        Resident fused rank ops (``repro.parallel.resident``) perform the
        ``⊕Σ∂Ω`` assembly at the workers; this keeps the *modeled*
        communication bit-identical to inline execution by running the
        same charging loops the real collective runs.
        """
        submap = self.submap
        trc = self.tracer
        if trc.enabled:
            messages, words = self._iface_counts()
            trc.begin("interface_assemble", "exchange",
                      messages=messages, words=words)
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, local_idx in submap.shared[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(local_idx)
                rs.flops += len(local_idx)  # one add per received word
                if self.trace:
                    self.message_log.append((s, t, len(local_idx)))
        if trc.enabled:
            trc.end()

    def charge_halo_exchange(self, plan: dict) -> None:
        """Record exactly what :meth:`halo_exchange` records — tracer
        span, sender-side message/word charges, message log — without the
        data movement (resident fused ops fill halos worker-side)."""
        trc = self.tracer
        if trc.enabled:
            total_words = 0
            for s in range(self.size):
                for t, (_, recv_slots) in plan[s].items():
                    total_words += len(recv_slots)
            trc.begin("halo_exchange", "exchange",
                      messages=sum(len(plan[s]) for s in range(self.size)),
                      words=total_words)
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, (send_idx, _) in plan[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(send_idx)
                if self.trace:
                    self.message_log.append((s, t, len(send_idx)))
        if trc.enabled:
            trc.end()

    def allreduce_sum(self, values, words: int = 1):
        """Global sum reduction across ranks.

        ``values`` is a per-rank list of scalars or equal-length arrays;
        returns the elementwise sum (same on every rank, as MPI_Allreduce
        would).  The sum is combined in **fixed binary-tree order** —
        ``(v0+v1)+(v2+v3)...`` — the pairing a recursive-doubling MPI
        allreduce performs, identical on every backend so results stay
        bit-reproducible.  Each rank is charged one reduction of
        ``words`` words.
        """
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        trc = self.tracer
        if trc.enabled:
            trc.begin("allreduce_sum", "reduction", words=int(words))
        result = self._tree_reduce(list(values), words=int(words))
        self.stats.charge_all_ranks(reductions=1, reduction_words=int(words))
        if trc.enabled:
            trc.end()
        return result

    def halo_exchange(self, x_parts: list, plan: dict) -> list:
        """Row-partition halo scatter/gather (Eq. 48's first two steps).

        ``plan[s]`` maps neighbour rank ``t`` to ``(send_local_idx,
        recv_slots)``: rank ``s`` sends ``x_parts[s][send_local_idx]`` to
        ``t``; the values rank ``s`` *receives* from ``t`` land in its
        external buffer at positions ``recv_slots``.  Returns the per-rank
        external vectors.  Data movement is receiver-centric — each rank
        fills only its own external buffer — so the gather dispatches
        through :meth:`run_ranks`; sender-side charging stays serial.
        """
        if len(x_parts) != self.size:
            raise ValueError("one part per rank required")
        ext_sizes = [0] * self.size
        total_words = 0
        for s in range(self.size):
            for t, (_, recv_slots) in plan[s].items():
                ext_sizes[s] = max(
                    ext_sizes[s], (int(recv_slots.max()) + 1) if len(recv_slots) else 0
                )
                total_words += len(recv_slots)
        trc = self.tracer
        if trc.enabled:
            # Receiver-side word total == sender-side charged total (the
            # exchange is a permutation of the same payloads).
            trc.begin("halo_exchange", "exchange",
                      messages=sum(len(plan[s]) for s in range(self.size)),
                      words=total_words)
        ext = [np.zeros(n) for n in ext_sizes]
        self._halo_fill(x_parts, plan, ext, total_words)
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, (send_idx, _) in plan[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(send_idx)
                if self.trace:
                    self.message_log.append((s, t, len(send_idx)))
        if trc.enabled:
            trc.end()
        return ext

    def halo_exchange_block(self, x_parts: list, plan: dict) -> list:
        """Batched halo scatter/gather over ``(n_own, k)`` blocks.

        Same plan and data movement as :meth:`halo_exchange`, but every
        neighbour message carries all ``k`` columns: one message per
        ordered pair per call, ``k`` times the words.  Column ``c`` of
        each returned external buffer is bit-identical to a per-column
        exchange.
        """
        if len(x_parts) != self.size:
            raise ValueError("one part per rank required")
        k = x_parts[0].shape[1]
        ext_sizes = [0] * self.size
        total_words = 0
        for s in range(self.size):
            for t, (_, recv_slots) in plan[s].items():
                ext_sizes[s] = max(
                    ext_sizes[s], (int(recv_slots.max()) + 1) if len(recv_slots) else 0
                )
                total_words += len(recv_slots) * k
        trc = self.tracer
        if trc.enabled:
            trc.begin("halo_exchange", "exchange",
                      messages=sum(len(plan[s]) for s in range(self.size)),
                      words=total_words, k=k)
        ext = [np.zeros((n, k)) for n in ext_sizes]
        self._halo_fill(x_parts, plan, ext, total_words)
        for s in range(self.size):
            rs = self.stats.ranks[s]
            for t, (send_idx, _) in plan[s].items():
                rs.nbr_messages += 1
                rs.nbr_words += len(send_idx) * k
                if self.trace:
                    self.message_log.append((s, t, len(send_idx) * k))
        if trc.enabled:
            trc.end()
        return ext

    def reset_stats(self) -> None:
        """Zero all counters (e.g. after setup, before the timed solve)."""
        self.stats.reset()


class VirtualComm(Comm):
    """The deterministic serial backend (``"virtual"``, the default).

    Rank bodies execute one after another in the calling thread — the
    behaviour every prior version of this codebase had — so it is also the
    reference implementation the concurrent backends are tested against.
    """

    backend_name = "virtual"

    def run_ranks(self, body, work: int | None = None) -> list:
        """Run ``body(rank)`` serially, in rank order."""
        if self.tracer.enabled:
            body = timed_rank_body(self.tracer, body)
        return [body(r) for r in range(self.size)]


# ----------------------------------------------------------------------
# Backend registry (mirrors repro.sparse.kernels)
# ----------------------------------------------------------------------
_COMM_BACKENDS = ("virtual", "thread", "process", "chaos")
_current: list = [None]  # resolved lazily so the env var wins at first use


def available_comm_backends() -> tuple:
    """Names of the registered communicator backends."""
    return _COMM_BACKENDS


def _resolve(name: str) -> str:
    name = name.strip().lower()
    if name not in _COMM_BACKENDS:
        raise ValueError(
            f"unknown comm backend {name!r}; available: {_COMM_BACKENDS}"
        )
    return name


def get_comm_backend() -> str:
    """The active backend name (env ``REPRO_COMM_BACKEND`` at first use)."""
    if _current[0] is None:
        _current[0] = _resolve(os.environ.get("REPRO_COMM_BACKEND", "virtual"))
    return _current[0]


def set_comm_backend(name: str) -> str | None:
    """Select the communicator backend by name; returns the previous one."""
    prev = _current[0]
    _current[0] = _resolve(name)
    return prev


@contextmanager
def use_comm_backend(name: str):
    """Context manager: run a block under a specific comm backend.

    Leaving a ``"thread"`` (or ``"process"``) block also drains the
    backend's shared worker pool when no live communicator still borrows
    it, so tests (and short-lived sessions) don't leak parked threads or
    worker processes.
    """
    prev = _current[0]
    set_comm_backend(name)
    resolved = _current[0]
    try:
        yield
    finally:
        _current[0] = prev
        if resolved in ("thread", "process"):
            import sys

            mod = sys.modules.get(f"repro.parallel.{resolved}_comm")
            if mod is not None:
                mod.shutdown_pool()


def make_comm(
    submap: SubdomainMap, backend: str | None = None, trace: bool = False
) -> Comm:
    """Construct a communicator for ``submap`` on the chosen backend.

    ``backend=None`` uses the session default (``set_comm_backend`` /
    ``REPRO_COMM_BACKEND``, falling back to ``"virtual"``).  The
    ``"chaos"`` backend wraps the inner backend and fault plan selected
    via :func:`repro.parallel.chaos.set_fault_plan` /
    ``REPRO_CHAOS_PLAN``.

    Raises :class:`NestedCommError` when called from inside a comm
    worker — a communicator must be built in the orchestrator.
    """
    name = _resolve(backend) if backend is not None else get_comm_backend()
    guard_nested_comm(name)
    if name == "thread":
        from repro.parallel.thread_comm import ThreadComm

        return ThreadComm(submap, trace=trace)
    if name == "process":
        from repro.parallel.process_comm import ProcessComm

        return ProcessComm(submap, trace=trace)
    if name == "chaos":
        from repro.parallel.chaos import ChaosComm, get_fault_plan

        plan, inner = get_fault_plan()
        return ChaosComm(submap, trace=trace, plan=plan, inner=inner)
    return VirtualComm(submap, trace=trace)
