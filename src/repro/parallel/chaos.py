"""Deterministic chaos-injection communicator backend.

:class:`ChaosComm` is a proxy :class:`~repro.parallel.comm.Comm` that
wraps any inner backend (``virtual``, ``thread`` or ``process``) and injects
message-level faults into the three collectives — the interface assembly
``⊕Σ∂Ω``, the halo exchange, and the tree allreduce — under the control of
a seeded, declarative :class:`FaultPlan`.  It exists to prove the
ROADMAP's "no silently wrong answer" property: a solve whose exchanges
misbehave must either still converge with a verified true residual or
report a structured diagnostic naming the anomaly
(:mod:`repro.solvers.diagnostics`).

Design rules:

* **Deterministic.**  Injection happens orchestrator-side, after the
  inner backend's ``run_ranks`` dispatch returns, so results are
  bit-identical for a given plan regardless of thread scheduling.  All
  randomness (which word to corrupt, which neighbour to drop) comes from
  ``np.random.default_rng`` seeded by ``(plan.seed, rule index, call
  index)``.
* **Round-trippable.**  ``FaultPlan.to_json()`` / ``from_json()`` are
  exact inverses; any chaos failure reproduces from its printed plan
  string (see docs/TESTING.md).
* **Transparent when idle.**  With an empty plan, every collective
  returns exactly what the inner backend would — the parity tests pin
  this bit-for-bit.

Fault kinds (:data:`FAULT_KINDS`):

``sign_flip``, ``nan``, ``inf``, ``zero_word``
    Value corruption of one word of the collective's output on the target
    rank (for the allreduce: of the globally-reduced value, as a
    corrupted broadcast every rank observes).
``drop_contribution``
    A lost message: the target rank never receives one neighbour's
    contribution (assembly) / payload (halo; slots stay zero), or one
    rank's value is missing from the allreduce.
``duplicate_payload``
    A duplicated delivery: a neighbour's contribution is added twice
    (assembly), a *stale* previous-call payload overwrites the current
    one (halo), or one rank's value is double-counted (allreduce).
``reorder_payload``
    Out-of-order delivery: one neighbour's received words land permuted
    (halo / assembly); for the allreduce the reduction runs in reversed
    rank order (a pure rounding-level perturbation).
``stall``
    A rank stalls: the collective blocks for ``param`` seconds (default
    2 ms) before completing.  Numerics are untouched — the solver must
    simply survive the latency.

Backend registration: ``"chaos"`` in :func:`repro.parallel.comm.make_comm`.
The active plan is taken from :func:`set_fault_plan` /
:func:`use_fault_plan`, falling back to the ``REPRO_CHAOS_PLAN``
environment variable (a JSON plan string, or a path to a ``.json`` file)
with ``REPRO_CHAOS_INNER`` selecting the wrapped backend (default
``"virtual"``).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.comm import Comm, make_comm
from repro.partition.interface import SubdomainMap

#: Collectives a rule may target (``"*"`` matches every collective).
COLLECTIVES = ("interface_assemble", "halo_exchange", "allreduce_sum", "*")

#: The injectable fault kinds (documented in the module docstring).
FAULT_KINDS = (
    "sign_flip",
    "nan",
    "inf",
    "zero_word",
    "drop_contribution",
    "duplicate_payload",
    "reorder_payload",
    "stall",
)


@dataclass(frozen=True)
class FaultRule:
    """One declarative injection rule.

    Attributes
    ----------
    collective:
        Target collective name, or ``"*"`` for any.
    kind:
        One of :data:`FAULT_KINDS`.
    rank:
        Target rank; None picks a seeded-random rank per injection.
    call_index:
        Inject only on this per-collective call number (0-based, counted
        from communicator construction — setup calls count); None matches
        every call.
    count:
        Maximum number of injections this rule performs over the
        communicator's lifetime; None is unlimited.  Defaults to 1 (a
        transient fault — note that a fault applied *consistently to
        every call* makes the solver iterate a coherently wrong operator,
        which no internal check can distinguish from a different
        problem; see docs/TESTING.md).
    param:
        Kind-specific knob: stall seconds for ``stall`` (default 0.002),
        unused otherwise.
    """

    collective: str
    kind: str
    rank: int | None = None
    call_index: int | None = None
    count: int | None = 1
    param: float | None = None

    def __post_init__(self) -> None:
        if self.collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {self.collective!r}; "
                f"choose from {COLLECTIVES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unlimited)")
        if self.call_index is not None and self.call_index < 0:
            raise ValueError("call_index must be >= 0")

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` is the exact inverse."""
        return {
            "collective": self.collective,
            "kind": self.kind,
            "rank": self.rank,
            "call_index": self.call_index,
            "count": self.count,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        """Rebuild (and re-validate) a rule from :meth:`to_dict` output."""
        return cls(**{k: payload.get(k) for k in (
            "collective", "kind", "rank", "call_index", "count", "param"
        )})


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule` — the full, reproducible
    description of one chaos scenario.

    ``seed`` drives every random choice an injection makes; two runs of
    the same plan against the same solve produce identical injections and
    identical numbers.
    """

    rules: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for r in self.rules:
            if not isinstance(r, FaultRule):
                raise TypeError("rules must be FaultRule instances")

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-fault plan (a pure passthrough proxy)."""
        return cls()

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` is the exact inverse."""
        return {"seed": int(self.seed), "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in payload.get("rules", ())),
            seed=int(payload.get("seed", 0)),
        )

    def to_json(self) -> str:
        """Compact JSON string; ``from_json`` is the exact inverse."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Active-plan registry (consulted by make_comm for backend "chaos")
# ----------------------------------------------------------------------
_active: list = [None]  # (FaultPlan, inner_name) or None


def set_fault_plan(plan: FaultPlan | None, inner: str = "virtual"):
    """Select the plan new ``"chaos"`` communicators run; returns the
    previous (plan, inner) pair.  ``None`` reverts to the environment."""
    prev = _active[0]
    _active[0] = None if plan is None else (plan, inner)
    return prev


@contextmanager
def use_fault_plan(plan: FaultPlan, inner: str = "virtual"):
    """Context manager: build ``"chaos"`` communicators from ``plan``
    (wrapping the ``inner`` backend) inside the block."""
    prev = _active[0]
    _active[0] = (plan, inner)
    try:
        yield plan
    finally:
        _active[0] = prev


def get_fault_plan() -> tuple:
    """The (plan, inner backend name) a new chaos communicator will use:
    the :func:`set_fault_plan` value, else ``REPRO_CHAOS_PLAN`` /
    ``REPRO_CHAOS_INNER`` from the environment, else an empty plan over
    the virtual backend."""
    if _active[0] is not None:
        return _active[0]
    inner = os.environ.get("REPRO_CHAOS_INNER", "virtual")
    raw = os.environ.get("REPRO_CHAOS_PLAN")
    if not raw:
        return FaultPlan.empty(), inner
    if raw.endswith(".json") and os.path.exists(raw):
        with open(raw, encoding="utf-8") as fh:
            raw = fh.read()
    return FaultPlan.from_json(raw), inner


class ChaosComm(Comm):
    """Fault-injecting proxy communicator (``"chaos"``).

    Collectives run the shared base-class implementations (so counters
    and tracing behave exactly like any other backend), dispatching rank
    bodies through the wrapped inner communicator; the fault plan is then
    applied to the collective's *output*, deterministically.

    Attributes
    ----------
    plan:
        The :class:`FaultPlan` driving injection.
    inner:
        The wrapped :class:`Comm` executing ``run_ranks`` / ``barrier``.
    injected:
        One dict per performed injection — ``{collective, call_index,
        rank, kind, detail}`` — the ground truth chaos tests assert
        against.
    """

    backend_name = "chaos"

    def __init__(
        self,
        submap: SubdomainMap,
        trace: bool = False,
        plan: FaultPlan | None = None,
        inner: str | Comm = "virtual",
    ):
        super().__init__(submap, trace=trace)
        if plan is None:
            plan = FaultPlan.empty()
        self.plan = plan
        if isinstance(inner, Comm):
            if inner.backend_name == "chaos":
                raise ValueError("chaos cannot wrap another chaos backend")
            self.inner = inner
        else:
            if inner == "chaos":
                raise ValueError("chaos cannot wrap another chaos backend")
            self.inner = make_comm(submap, backend=inner)
        self.injected: list = []
        self._calls = {c: 0 for c in COLLECTIVES if c != "*"}
        self._fired = [0] * len(plan.rules)
        self._g2l: dict = {}  # rank -> global->local index map (lazy)
        self._halo_last: dict = {}  # (s, t) -> previous payload

    # ------------------------------------------------------------------
    # Delegated primitives
    # ------------------------------------------------------------------
    def set_tracer(self, tracer) -> None:
        """Attach the tracer here *and* on the inner backend.

        Collective spans are emitted by the base-class implementations
        running on this proxy; the inner comm only contributes per-rank
        body timing from its ``run_ranks``, so nothing is double-counted.
        """
        super().set_tracer(tracer)
        self.inner.set_tracer(tracer)

    def run_ranks(self, body, work: int | None = None) -> list:
        """Dispatch rank bodies through the wrapped inner backend."""
        return self.inner.run_ranks(body, work=work)

    def barrier(self) -> None:
        """Delegate to the inner backend's barrier."""
        self.inner.barrier()

    def close(self) -> None:
        """Release the inner backend's resources; idempotent."""
        self.inner.close()

    # The data-movement hooks delegate too, so an inner ``process``
    # backend genuinely moves the (pre-injection) payloads through its
    # worker processes: faults land on top of the real exchange path
    # rather than a shortcut through the orchestrator.
    def _gather_back(self, glob, k):
        return self.inner._gather_back(glob, k)

    def _halo_fill(self, x_parts, plan, ext, total_words):
        return self.inner._halo_fill(x_parts, plan, ext, total_words)

    def _tree_reduce(self, vals, words):
        return self.inner._tree_reduce(vals, words)

    # ------------------------------------------------------------------
    # Injection machinery
    # ------------------------------------------------------------------
    def _matches(self, collective: str, call_idx: int) -> list:
        """(rule_index, rule) pairs firing on this call, honoring counts."""
        out = []
        for i, rule in enumerate(self.plan.rules):
            if rule.collective not in (collective, "*"):
                continue
            if rule.call_index is not None and rule.call_index != call_idx:
                continue
            if rule.count is not None and self._fired[i] >= rule.count:
                continue
            out.append((i, rule))
        return out

    def _rng(self, rule_idx: int, call_idx: int) -> np.random.Generator:
        """Deterministic per-(rule, call) generator."""
        return np.random.default_rng((int(self.plan.seed), rule_idx, call_idx))

    def _log(self, i, rule, collective, call_idx, rank, detail) -> None:
        self._fired[i] += 1
        self.injected.append(
            {
                "collective": collective,
                "call_index": call_idx,
                "rank": None if rank is None else int(rank),
                "kind": rule.kind,
                "detail": detail,
            }
        )

    def _target_rank(self, rule: FaultRule, rng) -> int:
        if rule.rank is not None:
            return int(rule.rank) % self.size
        return int(rng.integers(self.size))

    def _corrupt_word(self, vec: np.ndarray, kind: str, rng) -> str:
        """Apply a value fault to one seeded-random word of ``vec``."""
        if len(vec) == 0:
            return "empty vector; nothing corrupted"
        i = int(rng.integers(len(vec)))
        if kind == "sign_flip":
            vec[i] = -vec[i]
        elif kind == "nan":
            vec[i] = np.nan
        elif kind == "inf":
            vec[i] = np.inf
        elif kind == "zero_word":
            vec[i] = 0.0
        return f"word {i}"

    def _g2l_for(self, t: int) -> np.ndarray:
        """Global->local DOF map of rank ``t`` (built lazily, cached)."""
        m = self._g2l.get(t)
        if m is None:
            m = np.full(self.submap.n_global, -1, dtype=np.int64)
            m[self.submap.l2g[t]] = np.arange(len(self.submap.l2g[t]))
            self._g2l[t] = m
        return m

    @staticmethod
    def _stall(rule: FaultRule) -> str:
        seconds = 0.002 if rule.param is None else float(rule.param)
        time.sleep(seconds)
        return f"stalled {seconds:.3f}s"

    # ------------------------------------------------------------------
    # Faulted collectives
    # ------------------------------------------------------------------
    def interface_assemble(self, parts: list) -> list:
        """The shared ``⊕Σ∂Ω`` assembly, then plan-driven injection on
        the assembled per-rank outputs (value faults, dropped/duplicated/
        permuted neighbour contributions, stalls)."""
        name = "interface_assemble"
        call_idx = self._calls[name]
        self._calls[name] += 1
        out = super().interface_assemble(parts)
        for i, rule in self._matches(name, call_idx):
            rng = self._rng(i, call_idx)
            s = self._target_rank(rule, rng)
            kind = rule.kind
            if kind == "stall":
                detail = self._stall(rule)
            elif kind in ("sign_flip", "nan", "inf", "zero_word"):
                detail = self._corrupt_word(out[s], kind, rng)
            else:
                nbrs = sorted(self.submap.shared[s])
                if not nbrs:
                    detail = f"rank {s} has no neighbours; no-op"
                    self._log(i, rule, name, call_idx, s, detail)
                    continue
                t = int(nbrs[int(rng.integers(len(nbrs)))])
                shared_idx = self.submap.shared[s][t]
                g = self.submap.l2g[s][shared_idx]
                contrib = parts[t][self._g2l_for(t)[g]]
                if kind == "drop_contribution":
                    # Rank s never received t's message: its interface
                    # values miss t's partial sums.
                    out[s][shared_idx] -= contrib
                    detail = f"dropped contribution of rank {t}"
                elif kind == "duplicate_payload":
                    out[s][shared_idx] += contrib
                    detail = f"contribution of rank {t} applied twice"
                else:  # reorder_payload
                    perm = rng.permutation(len(shared_idx))
                    out[s][shared_idx] += contrib[perm] - contrib
                    detail = f"contribution of rank {t} permuted"
            self._log(i, rule, name, call_idx, s, detail)
        return out

    def halo_exchange(self, x_parts: list, plan: dict) -> list:
        """The shared halo scatter/gather, then plan-driven injection on
        the received external buffers (value faults, dropped payloads,
        stale duplicates, permuted slots, stalls)."""
        name = "halo_exchange"
        call_idx = self._calls[name]
        self._calls[name] += 1
        ext = super().halo_exchange(x_parts, plan)
        matches = self._matches(name, call_idx)
        for i, rule in matches:
            rng = self._rng(i, call_idx)
            s = self._target_rank(rule, rng)
            kind = rule.kind
            if kind == "stall":
                detail = self._stall(rule)
            elif kind in ("sign_flip", "nan", "inf", "zero_word"):
                detail = self._corrupt_word(ext[s], kind, rng)
            else:
                nbrs = sorted(
                    t for t, (_, slots) in plan[s].items() if len(slots)
                )
                if not nbrs:
                    detail = f"rank {s} receives no halo; no-op"
                    self._log(i, rule, name, call_idx, s, detail)
                    continue
                t = int(nbrs[int(rng.integers(len(nbrs)))])
                _, recv_slots = plan[s][t]
                if kind == "drop_contribution":
                    # The message from t never arrived; the external
                    # buffer keeps its zero initialization there.
                    ext[s][recv_slots] = 0.0
                    detail = f"payload from rank {t} dropped"
                elif kind == "duplicate_payload":
                    # A stale duplicate of the *previous* exchange's
                    # payload overwrites the fresh values.
                    stale = self._halo_last.get((s, t))
                    if stale is not None and len(stale) == len(recv_slots):
                        ext[s][recv_slots] = stale
                        detail = f"stale duplicate payload from rank {t}"
                    else:
                        detail = (
                            f"no previous payload from rank {t}; no-op"
                        )
                else:  # reorder_payload
                    perm = rng.permutation(len(recv_slots))
                    ext[s][recv_slots] = ext[s][recv_slots][perm]
                    detail = f"payload from rank {t} reordered"
            self._log(i, rule, name, call_idx, s, detail)
        # Remember the true payloads for stale-duplicate injection; only
        # pay this cost when the plan can ever ask for it.
        if any(r.kind == "duplicate_payload" and
               r.collective in (name, "*") for r in self.plan.rules):
            for s in range(self.size):
                for t, (send_idx, _) in plan[s].items():
                    self._halo_last[(t, s)] = x_parts[s][send_idx].copy()
        return ext

    def interface_assemble_block(self, parts: list) -> list:
        """Batched ``⊕Σ∂Ω``, faulted like :meth:`interface_assemble`.

        Counts against the same ``interface_assemble`` call index (a
        batched exchange *is* that collective, just k words wide), so an
        existing fault plan hits a k-RHS solve at the same call positions
        it hits a single-RHS solve.  Value faults corrupt one word of the
        flattened block; drop/duplicate/reorder act on a neighbour's full
        k-column contribution, as a lost/duplicated/permuted message
        would.
        """
        name = "interface_assemble"
        call_idx = self._calls[name]
        self._calls[name] += 1
        out = super().interface_assemble_block(parts)
        for i, rule in self._matches(name, call_idx):
            rng = self._rng(i, call_idx)
            s = self._target_rank(rule, rng)
            kind = rule.kind
            if kind == "stall":
                detail = self._stall(rule)
            elif kind in ("sign_flip", "nan", "inf", "zero_word"):
                detail = self._corrupt_word(out[s].reshape(-1), kind, rng)
            else:
                nbrs = sorted(self.submap.shared[s])
                if not nbrs:
                    detail = f"rank {s} has no neighbours; no-op"
                    self._log(i, rule, name, call_idx, s, detail)
                    continue
                t = int(nbrs[int(rng.integers(len(nbrs)))])
                shared_idx = self.submap.shared[s][t]
                g = self.submap.l2g[s][shared_idx]
                contrib = parts[t][self._g2l_for(t)[g]]
                if kind == "drop_contribution":
                    out[s][shared_idx] -= contrib
                    detail = f"dropped contribution of rank {t}"
                elif kind == "duplicate_payload":
                    out[s][shared_idx] += contrib
                    detail = f"contribution of rank {t} applied twice"
                else:  # reorder_payload
                    perm = rng.permutation(len(shared_idx))
                    out[s][shared_idx] += contrib[perm] - contrib
                    detail = f"contribution of rank {t} permuted"
            self._log(i, rule, name, call_idx, s, detail)
        return out

    def halo_exchange_block(self, x_parts: list, plan: dict) -> list:
        """Batched halo exchange, faulted like :meth:`halo_exchange`
        (same ``halo_exchange`` call counter; payload faults hit a
        neighbour's full k-column message)."""
        name = "halo_exchange"
        call_idx = self._calls[name]
        self._calls[name] += 1
        ext = super().halo_exchange_block(x_parts, plan)
        for i, rule in self._matches(name, call_idx):
            rng = self._rng(i, call_idx)
            s = self._target_rank(rule, rng)
            kind = rule.kind
            if kind == "stall":
                detail = self._stall(rule)
            elif kind in ("sign_flip", "nan", "inf", "zero_word"):
                detail = self._corrupt_word(ext[s].reshape(-1), kind, rng)
            else:
                nbrs = sorted(
                    t for t, (_, slots) in plan[s].items() if len(slots)
                )
                if not nbrs:
                    detail = f"rank {s} receives no halo; no-op"
                    self._log(i, rule, name, call_idx, s, detail)
                    continue
                t = int(nbrs[int(rng.integers(len(nbrs)))])
                _, recv_slots = plan[s][t]
                if kind == "drop_contribution":
                    ext[s][recv_slots] = 0.0
                    detail = f"payload from rank {t} dropped"
                elif kind == "duplicate_payload":
                    stale = self._halo_last.get((s, t))
                    if (
                        stale is not None
                        and stale.shape == ext[s][recv_slots].shape
                    ):
                        ext[s][recv_slots] = stale
                        detail = f"stale duplicate payload from rank {t}"
                    else:
                        detail = (
                            f"no previous payload from rank {t}; no-op"
                        )
                else:  # reorder_payload
                    perm = rng.permutation(len(recv_slots))
                    ext[s][recv_slots] = ext[s][recv_slots][perm]
                    detail = f"payload from rank {t} reordered"
            self._log(i, rule, name, call_idx, s, detail)
        if any(r.kind == "duplicate_payload" and
               r.collective in (name, "*") for r in self.plan.rules):
            for s in range(self.size):
                for t, (send_idx, _) in plan[s].items():
                    self._halo_last[(t, s)] = x_parts[s][send_idx].copy()
        return ext

    def allreduce_sum(self, values, words: int = 1):
        """The shared tree reduction, then plan-driven injection on the
        reduced value (corrupted broadcast, missing/double-counted rank
        contribution, reversed reduction order, stalls)."""
        name = "allreduce_sum"
        call_idx = self._calls[name]
        self._calls[name] += 1
        matches = self._matches(name, call_idx)
        reorder = [
            (i, r) for i, r in matches if r.kind == "reorder_payload"
        ]
        if reorder:
            # Reduce in reversed rank order — the rounding-level
            # perturbation a non-deterministic MPI allreduce exhibits.
            result = super().allreduce_sum(list(values)[::-1], words=words)
        else:
            result = super().allreduce_sum(values, words=words)
        for i, rule in matches:
            rng = self._rng(i, call_idx)
            kind = rule.kind
            rank: int | None = None
            if kind == "stall":
                detail = self._stall(rule)
            elif kind == "reorder_payload":
                detail = "reduction order reversed"
            elif kind in ("sign_flip", "nan", "inf", "zero_word"):
                if np.ndim(result) == 0:
                    val = float(result)
                    if kind == "sign_flip":
                        result = -val
                    elif kind == "nan":
                        result = float("nan")
                    elif kind == "inf":
                        result = float("inf")
                    else:
                        result = 0.0
                    detail = "reduced scalar corrupted"
                else:
                    result = np.array(result, dtype=np.float64, copy=True)
                    detail = self._corrupt_word(result, kind, rng)
            else:
                rank = self._target_rank(rule, rng)
                if kind == "drop_contribution":
                    result = result - values[rank]
                    detail = f"rank {rank} value missing from reduction"
                else:  # duplicate_payload
                    result = result + values[rank]
                    detail = f"rank {rank} value counted twice"
            self._log(i, rule, name, call_idx, rank, detail)
        return result
