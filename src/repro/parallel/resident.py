"""Rank-operation engines: inline execution vs. worker-resident execution.

Every per-rank compute region of the FGMRES inner loops — subdomain
matvecs, fused CGS partial dots, the fused orthogonalization update, the
basis commit and the solution AXPY — is expressed as a **named rank op**
dispatched through one of the engines below:

* the *inline* engines run the original per-rank closures through
  :meth:`Comm.run_ranks` in the orchestrator process (virtual, thread and
  chaos backends, and process communicators below the dispatch
  threshold);
* the *resident* engines ship each rank's CSR blocks to its owning
  worker process **once** (keyed by a generation id) and then dispatch
  small command descriptors — only vectors cross the process boundary,
  so the dominant flops run truly concurrently across cores.

Bit-identity contract
---------------------
Worker-side arithmetic mirrors the inline bodies token for token (same
numpy expressions, same association order), and **all flop charging stays
orchestrator-side** using the exact inline formulas — so ``CommStats``
of a resident solve are *exactly equal* to an inline solve, and the
returned floats are bitwise identical.  Collectives (interface assembly,
halo exchange, allreduce) are untouched: they always run through the
communicator, which keeps chaos injection and message counting at the
orchestrator.

State lifecycle
---------------
A resident engine draws a fresh generation id per system.  Before every
dispatch it checks :meth:`ProcessComm.resident_ready` — which acquires
the pool first, so a respawn (crash recovery, forced shutdown) honestly
invalidates the generation and the engine re-ships transparently.  A
worker that receives a rank op for an unknown generation raises, which
surfaces as the pool's named error taxonomy rather than silent garbage.

Preconditioner note: preconditioner state ships to the workers alongside
the CSR blocks.  Block-Jacobi ILU0 factors and coarse restriction bases
travel as per-rank ``aux`` state (the small factorized Galerkin matrix as
redundant ``aux_shared`` state), so BJ-ILU0 applies run as a single
``prec`` dispatch and the two-level coarse correction as a single
``coarse`` dispatch.  Polynomial applies fuse the whole degree-``k``
matvec/recurrence chain into one ``chain`` dispatch (one arena spin
barrier per degree instead of one pipe round-trip per matvec), and the
Arnoldi dots+ortho pair fuses into one ``arn`` dispatch.  The modeled
communication stays exact: after a fused dispatch the orchestrator
*replays* the inline charging — the real ``allreduce_sum`` on the partial
rows it reads back, and :meth:`Comm.charge_interface_assemble` /
:meth:`Comm.charge_halo_exchange` driven by the actual polynomial
recurrence over charge-only ghost vectors — so CommStats, tracer exchange
spans and chaos call indices are exactly the inline ones.
"""

from __future__ import annotations

import itertools
import os

import numpy as np

__all__ = [
    "engine_mode",
    "InlineEDDEngine",
    "ResidentEDDEngine",
    "InlineRDDEngine",
    "ResidentRDDEngine",
]

#: Generation ids for resident system state; unique per engine instance
#: so a worker can never confuse two systems' CSR blocks.
_generations = itertools.count(1)


def engine_mode(comm, work_hint: int) -> str:
    """``"inline"`` or ``"resident"`` for this communicator.

    Resident execution requires a live multi-rank :class:`ProcessComm`
    (the chaos communicator extends :class:`Comm` directly and therefore
    always runs inline, keeping fault injection deterministic at the
    orchestrator).  ``REPRO_PROCESS_RESIDENT=0`` forces inline,
    ``=1`` forces resident; unset defers to the communicator's dispatch
    threshold with ``work_hint`` (one matvec's scalar-op estimate).
    """
    from repro.parallel.process_comm import ProcessComm

    if not isinstance(comm, ProcessComm) or comm._closed or comm.size <= 1:
        return "inline"
    env = os.environ.get("REPRO_PROCESS_RESIDENT", "").strip()
    if env == "0":
        return "inline"
    if env == "1":
        return "resident"
    return "resident" if comm._use_pool(int(work_hint)) else "inline"


def _btimeout(comm) -> float:
    """Spin-barrier deadline for fused multi-phase dispatches: generous
    (half the pipe timeout, at least a second) so a dead or stuck peer
    surfaces through the pool's named error taxonomy, never a deadlock."""
    return max(1.0, 0.5 * float(comm.call_timeout))


class _ChargeVec:
    """Charge-only ghost vector for replaying a polynomial recurrence.

    After a fused ``chain`` dispatch the orchestrator re-runs the *exact*
    preconditioner recurrence (`apply_linear` itself) on one of these:
    every vector op charges precisely what the inline distributed vector
    charges per rank — ``axpy`` flops per element for ``+``/``-`` (1 for
    EDD :class:`DistVector`, 2 for the RDD axpy parts), one per element
    for scalar ``*``, nothing for ``copy`` — so CommStats can never drift
    from the inline path, even if a recurrence changes shape.
    """

    __slots__ = ("comm", "sizes", "axpy")

    def __init__(self, comm, sizes, axpy):
        self.comm = comm
        self.sizes = sizes
        self.axpy = axpy

    def copy(self):
        return self

    def _charge(self, per_elem):
        for r, n in enumerate(self.sizes):
            self.comm.add_flops(r, per_elem * n)
        return self

    def __add__(self, other):
        return self._charge(self.axpy)

    def __sub__(self, other):
        return self._charge(self.axpy)

    def __mul__(self, scalar):
        return self._charge(1)

    __rmul__ = __mul__


def _replay_chain_charges(engine, precond, mode: str) -> None:
    """Replay the inline charging of one polynomial application.

    Drives ``precond.apply_linear`` over charge-only ghosts with a ghost
    matvec that charges the inline engine's exact flop formulas and
    records the collective through ``charge_interface_assemble`` /
    ``charge_halo_exchange`` — identical CommStats, tracer exchange spans
    and message logs to the inline path, with zero data movement.
    """
    system = engine.system
    comm = system.comm
    sizes = engine.sizes
    if mode == "edd":
        vec = _ChargeVec(comm, sizes, 1)

        def matvec(_v):
            for r, a in enumerate(system.a_local):
                comm.add_flops(r, 2 * a.nnz)
            comm.charge_interface_assemble()
            return vec

    else:
        vec = _ChargeVec(comm, sizes, 2)

        def matvec(_v):
            comm.charge_halo_exchange(system.plan)
            for r in range(len(sizes)):
                comm.add_flops(r, 2 * system.a_loc[r].nnz)
                if system.a_ext[r].shape[1]:
                    comm.add_flops(r, 2 * system.a_ext[r].nnz + sizes[r])
            return vec

    precond.apply_linear(matvec, vec)


# ----------------------------------------------------------------------
# EDD engines
# ----------------------------------------------------------------------
class InlineEDDEngine:
    """Original per-rank closures through ``Comm.run_ranks`` (any backend)."""

    resident = False

    def __init__(self, system):
        self.system = system

    def ensure_shipped(self) -> None:
        """Nothing to ship: rank state lives in the orchestrator."""

    def matvec_local(self, v, cache=None):
        """Per-rank subdomain matvec (Eq. 37); ``cache`` is ignored inline."""
        from repro.core.distributed import DistVector

        system = self.system
        comm = system.comm
        a_local = system.a_local
        x_parts = v.parts
        parts = [None] * len(a_local)

        def body(r: int) -> None:
            a = a_local[r]
            parts[r] = a.matvec(x_parts[r])
            comm.add_flops(r, 2 * a.nnz)

        comm.run_ranks(body, work=2 * system.nnz_total)
        return DistVector(parts, "local", comm)

    def matvec_local_block(self, v):
        """Per-rank batched subdomain SpMM over all ``k`` columns."""
        from repro.core.distributed import DistBlock

        system = self.system
        comm = system.comm
        a_local = system.a_local
        x_parts = v.parts
        k = v.k
        parts = [None] * len(a_local)

        def body(r: int) -> None:
            a = a_local[r]
            parts[r] = a.matmat(x_parts[r])
            comm.add_flops(r, 2 * a.nnz * k)

        comm.run_ranks(body, work=2 * system.nnz_total * k)
        return DistBlock(parts, "local", comm)

    def seed_basis(self, v_loc0, v_hat0) -> None:
        """No worker mirror to seed."""

    def dot_fused(self, j, v_loc, w_hat, partial) -> None:
        """Fused CGS partial dots: ``partial[i, r] = <v_loc[i], w_hat>_r``."""
        comm = self.system.comm
        n_local = sum(len(p) for p in w_hat.parts)

        def dots_body(r: int) -> None:
            wr = w_hat.parts[r]
            for i in range(j + 1):
                partial[i, r] = v_loc[i].parts[r] @ wr
            comm.add_flops(r, 2 * (j + 1) * len(wr))

        comm.run_ranks(dots_body, work=2 * (j + 1) * n_local)

    def ortho(self, j, h, v_loc, v_hat, w_loc, w_hat):
        """Fused CGS update of the ``(w_loc, w_hat)`` pair against the basis."""
        from repro.core.distributed import DistVector

        system = self.system
        comm = system.comm
        n_local = sum(len(p) for p in w_hat.parts)
        new_loc: list = [None] * system.n_parts
        new_hat: list = [None] * system.n_parts

        def ortho_body(r: int) -> None:
            wl = w_loc.parts[r]
            wh = w_hat.parts[r]
            for i in range(j + 1):
                hi = h[i]
                wl = wl - hi * v_loc[i].parts[r]
                wh = wh - hi * v_hat[i].parts[r]
            new_loc[r] = wl
            new_hat[r] = wh
            comm.add_flops(r, 4 * (j + 1) * len(wl))

        comm.run_ranks(ortho_body, work=4 * (j + 1) * n_local)
        return (
            DistVector(new_loc, "local", comm),
            DistVector(new_hat, "global", comm),
        )

    def arnoldi_step(self, j, h, v_loc, v_hat, w_loc, w_hat, partial_buf):
        """One CGS Arnoldi coefficient round: fused partial dots, ONE
        allreduce of ``j + 1`` words (Eq. 33), fused orthogonalization."""
        comm = self.system.comm
        partial = partial_buf[: j + 1]
        self.dot_fused(j, v_loc, w_hat, partial)
        h[: j + 1] = comm.allreduce_sum(list(partial.T), words=j + 1)
        return self.ortho(j, h, v_loc, v_hat, w_loc, w_hat)

    def commit_basis(self, inv_h, hat_parts=None) -> None:
        """No worker mirror to append to."""

    def axpy_update(self, x_hat, y, z_hat):
        """Solution update ``x += sum_i y[i] * z_hat[i]`` via DistVector ops."""
        for i, yi in enumerate(y):
            x_hat = x_hat + float(yi) * z_hat[i]
        return x_hat


class ResidentEDDEngine:
    """Named rank ops against worker-resident :math:`\\hat A^{(s)}` blocks.

    The orchestrator keeps bitwise-identical copies of everything it
    needs for collectives and recurrences; workers cache the Arnoldi
    slots (``z[j]`` and the matvec output from each ``cache=j`` matvec,
    the dot input, the post-ortho pair) so the basis ops and the final
    AXPY transfer only what genuinely changes.
    """

    resident = True

    def __init__(self, system):
        self.system = system
        self.gen = next(_generations)
        self.sizes = [len(p) for p in system.d_parts]
        offsets = [0]
        for n in self.sizes:
            offsets.append(offsets[-1] + n)
        self.offsets = offsets[:-1]
        self.n_total = offsets[-1]
        self._aux_sent: set = set()

    # -- shipping ------------------------------------------------------
    def ensure_shipped(self) -> None:
        """Ship the per-rank CSR blocks unless the current pool already
        holds this generation (a respawned pool re-ships here)."""
        comm = self.system.comm
        if not comm.resident_ready(self.gen):
            self._ship()
            self._aux_sent.clear()

    def ensure_aux(self, key: str, make_states) -> None:
        """Ship a preconditioner's resident state (ILU factors, coarse
        bases and the factorized Galerkin matrix) once per pool
        generation; a pool respawn invalidates the generation, so the
        next dispatch re-ships the base system *and* every aux state."""
        self.ensure_shipped()
        if key in self._aux_sent:
            return
        comm = self.system.comm
        trc = comm.tracer
        if trc.enabled:
            trc.begin("resident_ship", "phase", aux=key)
            try:
                comm.resident_ship_aux(self.gen, make_states())
            finally:
                trc.end()
        else:
            comm.resident_ship_aux(self.gen, make_states())
        self._aux_sent.add(key)

    def _ship(self) -> None:
        system = self.system
        rank_states = [
            {
                "kind": "edd",
                "arrays": {
                    "indptr": a.indptr,
                    "indices": a.indices,
                    "data": a.data,
                },
                "meta": {"shape": tuple(a.shape)},
            }
            for a in system.a_local
        ]
        system.comm.resident_ship(self.gen, rank_states)

    def _dispatch(self, payload, writes, reads, total_words):
        from repro.sparse.kernels import active_backend_name

        self.ensure_shipped()
        comm = self.system.comm
        payload = dict(payload)
        payload["gen"] = self.gen
        payload["backend"] = active_backend_name()
        payload["offsets"] = self.offsets
        payload["sizes"] = self.sizes
        trc = comm.tracer
        if trc.enabled:
            trc.begin("rank_op", "comm", op=payload["name"])
            try:
                return comm.run_rank_op(payload, writes, reads, total_words)
            finally:
                trc.end()
        return comm.run_rank_op(payload, writes, reads, total_words)

    def _vec_writes(self, parts, base=0):
        return [
            (base + off, p) for off, p in zip(self.offsets, parts)
        ]

    def _vec_reads(self, base):
        return [
            (base + off, n) for off, n in zip(self.offsets, self.sizes)
        ]

    # -- ops -----------------------------------------------------------
    def matvec_local(self, v, cache=None):
        """Worker-resident subdomain matvec; ``cache=j`` retains the
        input slot ``z[j]`` and the output for later basis ops."""
        from repro.core.distributed import DistVector

        system = self.system
        comm = system.comm
        n = self.n_total
        payload = {
            "name": "mv",
            "cache": None if cache is None else int(cache),
            "out": n,
        }
        parts = self._dispatch(
            payload, self._vec_writes(v.parts), self._vec_reads(n), 2 * n
        )
        for r, a in enumerate(system.a_local):
            comm.add_flops(r, 2 * a.nnz)
        return DistVector(parts, "local", comm)

    def matvec_local_block(self, v):
        """Worker-resident batched SpMM over all ``k`` columns."""
        from repro.core.distributed import DistBlock

        system = self.system
        comm = system.comm
        k = v.k
        n = self.n_total
        writes = [
            (off * k, p) for off, p in zip(self.offsets, v.parts)
        ]
        reads = [
            (n * k + off * k, sz * k)
            for off, sz in zip(self.offsets, self.sizes)
        ]
        payload = {"name": "mvb", "k": k, "out": n * k}
        outs = self._dispatch(payload, writes, reads, 2 * n * k)
        parts = [o.reshape(sz, k) for o, sz in zip(outs, self.sizes)]
        for r, a in enumerate(system.a_local):
            comm.add_flops(r, 2 * a.nnz * k)
        return DistBlock(parts, "local", comm)

    def seed_basis(self, v_loc0, v_hat0) -> None:
        """Reset the workers' basis mirror to the cycle's first vector pair."""
        n = self.n_total
        writes = self._vec_writes(v_loc0.parts) + self._vec_writes(
            v_hat0.parts, base=n
        )
        self._dispatch(
            {"name": "seed", "two": True, "hat": n}, writes, [], 2 * n
        )

    def dot_fused(self, j, v_loc, w_hat, partial) -> None:
        """Fused CGS partial dots against the worker-resident basis;
        also caches ``w_hat`` worker-side for the ortho/commit ops."""
        comm = self.system.comm
        n = self.n_total
        p = len(self.sizes)
        reads = [(n + r * (j + 1), j + 1) for r in range(p)]
        outs = self._dispatch(
            {"name": "dots", "j": j, "out": n},
            self._vec_writes(w_hat.parts),
            reads,
            n + p * (j + 1),
        )
        for r in range(p):
            partial[:, r] = outs[r]
            comm.add_flops(r, 2 * (j + 1) * self.sizes[r])

    def ortho(self, j, h, v_loc, v_hat, w_loc, w_hat):
        """Fused CGS update of the cached ``(w_loc, w_hat)`` pair; only
        the ``j+1`` coefficients cross the process boundary in."""
        from repro.core.distributed import DistVector

        comm = self.system.comm
        n = self.n_total
        p = len(self.sizes)
        payload = {
            "name": "ortho",
            "j": j,
            "h": [float(h[i]) for i in range(j + 1)],
            "two": True,
            "hat": n,
        }
        outs = self._dispatch(
            payload, [], self._vec_reads(0) + self._vec_reads(n), 2 * n
        )
        for r in range(p):
            comm.add_flops(r, 4 * (j + 1) * self.sizes[r])
        return (
            DistVector(outs[:p], "local", comm),
            DistVector(outs[p:], "global", comm),
        )

    def arnoldi_step(self, j, h, v_loc, v_hat, w_loc, w_hat, partial_buf):
        """Fused dots + reduction + ortho in ONE dispatch (the inline
        pair costs two).  Workers compute the partial dots, spin once on
        the arena barrier, redundantly tree-reduce the ``(P, j+1)``
        partial rows (same pairing as ``Comm._tree_reduce``, so the same
        bits) and orthogonalize immediately.  The orchestrator re-runs
        the *real* ``allreduce_sum`` on the partial rows it reads back —
        identical result, and the reduction's charging, tracer span and
        chaos call index stay exactly where the inline path puts them."""
        from repro.core.distributed import DistVector

        comm = self.system.comm
        n = self.n_total
        p = len(self.sizes)
        pbase = 2 * n
        nflags = comm.pool_width()
        flags = pbase + p * (j + 1)
        payload = {
            "name": "arn",
            "j": j,
            "two": True,
            "hat": n,
            "partial": pbase,
            "flags": flags,
            "nflags": nflags,
            "btimeout": _btimeout(comm),
        }
        writes = self._vec_writes(w_hat.parts) + [(flags, np.zeros(nflags))]
        reads = (
            self._vec_reads(0)
            + self._vec_reads(n)
            + [(pbase + r * (j + 1), j + 1) for r in range(p)]
        )
        outs = self._dispatch(payload, writes, reads, flags + nflags)
        partial = partial_buf[: j + 1]
        for r in range(p):
            partial[:, r] = outs[2 * p + r]
            comm.add_flops(r, 2 * (j + 1) * self.sizes[r])
        h[: j + 1] = comm.allreduce_sum(list(partial.T), words=j + 1)
        for r in range(p):
            comm.add_flops(r, 4 * (j + 1) * self.sizes[r])
        return (
            DistVector(outs[:p], "local", comm),
            DistVector(outs[p : 2 * p], "global", comm),
        )

    def poly_chain(self, precond, terms, v_hat):
        """One fused dispatch for a whole degree-``k`` polynomial apply.

        Workers run the recurrence against their resident blocks,
        replaying the ``⊕Σ∂Ω`` interface assembly redundantly from the
        shared arena with one spin barrier per degree — O(1) pipe
        round-trips instead of O(k).  The inline charging (matvec flops,
        assembly messages/words, vector-op flops) is replayed afterwards
        by :func:`_replay_chain_charges` over the real recurrence."""
        from repro.core.distributed import DistVector

        comm = self.system.comm
        n = self.n_total
        nflags = comm.pool_width()
        kind, params = terms
        payload = {
            "name": "chain",
            "mode": "edd",
            "kind": kind,
            "params": params,
            "n_global": int(comm.submap.n_global),
            "out": n,
            "slots": 2 * n,
            "n_total": n,
            "flags": 4 * n,
            "nflags": nflags,
            "btimeout": _btimeout(comm),
        }
        writes = self._vec_writes(v_hat.parts) + [(4 * n, np.zeros(nflags))]
        parts = self._dispatch(
            payload, writes, self._vec_reads(n), 4 * n + nflags
        )
        _replay_chain_charges(self, precond, "edd")
        return DistVector(parts, "global", comm)

    def coarse_correct(self, tl, v_parts):
        """One fused dispatch for the two-level coarse correction:
        rank-local restriction, redundant tree reduction, redundant
        dense solve of the shipped factorized Galerkin matrix and
        rank-local prolongation.  The orchestrator replays the real
        coarse allreduce on the partial rows it reads back, so the
        correction still costs exactly ONE reduction of ``n_coarse``
        words — and chaos plans aimed at it keep firing."""
        comm = self.system.comm
        self.ensure_aux(tl._resident_key, tl._resident_states)
        n = self.n_total
        p = len(self.sizes)
        nc = tl.n_coarse
        pbase = n
        obase = n + p * nc
        nflags = comm.pool_width()
        flags = obase + n
        trc = comm.tracer
        traced = trc.enabled
        if traced:
            trc.begin("coarse_solve", "solver", n_coarse=nc, k=1)
        payload = {
            "name": "coarse",
            "nc": nc,
            "key": tl._resident_key,
            "partial": pbase,
            "out": obase,
            "flags": flags,
            "nflags": nflags,
            "btimeout": _btimeout(comm),
        }
        writes = self._vec_writes(v_parts) + [(flags, np.zeros(nflags))]
        reads = [(pbase + r * nc, nc) for r in range(p)] + self._vec_reads(
            obase
        )
        outs = self._dispatch(payload, writes, reads, flags + nflags)
        for r in range(p):
            comm.add_flops(r, 2 * tl._wl_parts[r].size)
        comm.allreduce_sum(outs[:p], words=nc)
        comm.add_flops_all([2 * nc * nc] * p)
        for r in range(p):
            comm.add_flops(r, 2 * tl._wg_parts[r].size)
        if traced:
            trc.end()
        return outs[p:]

    def commit_basis(self, inv_h, hat_parts=None) -> None:
        """Append ``inv_h`` times the post-ortho pair to the worker basis
        mirror; ``hat_parts`` overrides the hat (the basic variant's
        re-assembled vector).  Charges nothing: the orchestrator's
        own basis append does the charging."""
        override = hat_parts is not None
        writes = self._vec_writes(hat_parts) if override else []
        total = self.n_total if override else 1
        self._dispatch(
            {
                "name": "commit",
                "inv_h": float(inv_h),
                "two": True,
                "override": override,
            },
            writes,
            [],
            total,
        )

    def axpy_update(self, x_hat, y, z_hat):
        """Solution update against the worker-cached ``z`` slots; only
        ``x`` and the ``y`` coefficients cross the boundary."""
        from repro.core.distributed import DistVector

        if len(y) == 0:
            return x_hat
        comm = self.system.comm
        n = self.n_total
        payload = {
            "name": "axpy",
            "y": [float(yi) for yi in y],
            "out": n,
        }
        parts = self._dispatch(
            payload, self._vec_writes(x_hat.parts), self._vec_reads(n), 2 * n
        )
        for r, sz in enumerate(self.sizes):
            comm.add_flops(r, 2 * len(y) * sz)
        return DistVector(parts, "global", comm)


# ----------------------------------------------------------------------
# RDD engines
# ----------------------------------------------------------------------
class InlineRDDEngine:
    """Original per-rank closures through ``Comm.run_ranks`` (any backend)."""

    resident = False

    def __init__(self, system):
        self.system = system

    def ensure_shipped(self) -> None:
        """Nothing to ship: rank state lives in the orchestrator."""

    def matvec(self, x_parts, ext_vals, cache=None):
        """Per-rank Eq. 48 block products; ``cache`` is ignored inline."""
        system = self.system
        comm = system.comm
        a_loc = system.a_loc
        a_ext = system.a_ext
        out = [None] * len(a_loc)

        def body(r: int) -> None:
            y = a_loc[r].matvec(x_parts[r])
            comm.add_flops(r, 2 * a_loc[r].nnz)
            if a_ext[r].shape[1]:
                y = y + a_ext[r].matvec(ext_vals[r])
                comm.add_flops(r, 2 * a_ext[r].nnz + len(y))
            out[r] = y

        comm.run_ranks(body, work=2 * system.nnz_total)
        return out

    def matvec_block(self, x_parts, ext_vals):
        """Per-rank batched Eq. 48 SpMMs over all ``k`` columns."""
        system = self.system
        comm = system.comm
        a_loc = system.a_loc
        a_ext = system.a_ext
        k = x_parts[0].shape[1]
        out = [None] * len(a_loc)

        def body(r: int) -> None:
            y = a_loc[r].matmat(x_parts[r])
            comm.add_flops(r, 2 * a_loc[r].nnz * k)
            if a_ext[r].shape[1]:
                y = y + a_ext[r].matmat(ext_vals[r])
                comm.add_flops(r, 2 * a_ext[r].nnz * k + y.size)
            out[r] = y

        comm.run_ranks(body, work=2 * system.nnz_total * k)
        return out

    def seed_basis(self, v0) -> None:
        """No worker mirror to seed."""

    def dot_fused(self, j, v, w, partial) -> None:
        """Fused CGS partial dots: ``partial[i, r] = v[i][r] @ w[r]``."""
        comm = self.system.comm
        n_local = sum(len(wr) for wr in w)

        def dots_body(r: int) -> None:
            wr = w[r]
            for i in range(j + 1):
                partial[i, r] = v[i][r] @ wr
            comm.add_flops(r, 2 * (j + 1) * len(wr))

        comm.run_ranks(dots_body, work=2 * (j + 1) * n_local)

    def ortho(self, j, h, v, w):
        """Fused CGS update of ``w`` against the basis."""
        comm = self.system.comm
        n_local = sum(len(wr) for wr in w)
        new_w: list = [None] * len(w)

        def ortho_body(r: int) -> None:
            wr = w[r]
            for i in range(j + 1):
                wr = wr - h[i] * v[i][r]
            new_w[r] = wr
            comm.add_flops(r, 2 * (j + 1) * len(wr))

        comm.run_ranks(ortho_body, work=2 * (j + 1) * n_local)
        return new_w

    def arnoldi_step(self, j, h, v, w):
        """One CGS Arnoldi coefficient round: fused partial dots, ONE
        allreduce of ``j + 1`` words, fused orthogonalization."""
        comm = self.system.comm
        partial = np.zeros((j + 1, len(w)))
        self.dot_fused(j, v, w, partial)
        h[: j + 1] = comm.allreduce_sum(list(partial.T), words=j + 1)
        return self.ortho(j, h, v, w)

    def commit_basis(self, inv_h) -> None:
        """No worker mirror to append to."""

    def axpy_update(self, x, y, z_store):
        """Solution update ``x += sum_i y[i] * z_store[i]`` per rank."""
        comm = self.system.comm
        for i, yi in enumerate(y):
            alpha = float(yi)
            z = z_store[i]
            out = [None] * len(x)

            def body(r: int) -> None:
                out[r] = x[r] + alpha * z[r]
                comm.add_flops(r, 2 * len(x[r]))

            comm.run_ranks(body, work=2 * sum(len(p) for p in x))
            x = out
        return x


class ResidentRDDEngine:
    """Named rank ops against worker-resident row blocks (Eq. 48)."""

    resident = True

    def __init__(self, system):
        self.system = system
        self.gen = next(_generations)
        self.sizes = [len(o) for o in system.own]
        offsets = [0]
        for n in self.sizes:
            offsets.append(offsets[-1] + n)
        self.offsets = offsets[:-1]
        self.n_total = offsets[-1]
        self._aux_sent: set = set()
        self._ext_sizes: list | None = None

    # -- shipping ------------------------------------------------------
    def ensure_shipped(self) -> None:
        """Ship the per-rank CSR block pairs unless the current pool
        already holds this generation."""
        comm = self.system.comm
        if not comm.resident_ready(self.gen):
            self._ship()
            self._aux_sent.clear()

    def ensure_aux(self, key: str, make_states) -> None:
        """Ship a preconditioner's resident state (ILU factors, coarse
        bases and the factorized Galerkin matrix) once per pool
        generation; a pool respawn invalidates the generation, so the
        next dispatch re-ships the base system *and* every aux state."""
        self.ensure_shipped()
        if key in self._aux_sent:
            return
        comm = self.system.comm
        trc = comm.tracer
        if trc.enabled:
            trc.begin("resident_ship", "phase", aux=key)
            try:
                comm.resident_ship_aux(self.gen, make_states())
            finally:
                trc.end()
        else:
            comm.resident_ship_aux(self.gen, make_states())
        self._aux_sent.add(key)

    def _halo_ext_sizes(self) -> list:
        """Per-rank external-buffer lengths, computed with the *exact*
        sizing rule of :meth:`Comm.halo_exchange` (max referenced recv
        slot + 1) so worker-side halo fills allocate identical buffers."""
        if self._ext_sizes is None:
            plan = self.system.plan
            sizes = [0] * len(self.sizes)
            for s in range(len(sizes)):
                for _t, (_send, recv_slots) in plan[s].items():
                    if len(recv_slots):
                        sizes[s] = max(sizes[s], int(recv_slots.max()) + 1)
            self._ext_sizes = sizes
        return self._ext_sizes

    def _ship(self) -> None:
        system = self.system
        rank_states = []
        for a_loc, a_ext in zip(system.a_loc, system.a_ext):
            rank_states.append(
                {
                    "kind": "rdd",
                    "arrays": {
                        "loc_indptr": a_loc.indptr,
                        "loc_indices": a_loc.indices,
                        "loc_data": a_loc.data,
                        "ext_indptr": a_ext.indptr,
                        "ext_indices": a_ext.indices,
                        "ext_data": a_ext.data,
                    },
                    "meta": {
                        "loc_shape": tuple(a_loc.shape),
                        "ext_shape": tuple(a_ext.shape),
                    },
                }
            )
        system.comm.resident_ship(self.gen, rank_states)

    def _dispatch(self, payload, writes, reads, total_words):
        from repro.sparse.kernels import active_backend_name

        self.ensure_shipped()
        comm = self.system.comm
        payload = dict(payload)
        payload["gen"] = self.gen
        payload["backend"] = active_backend_name()
        payload["offsets"] = self.offsets
        payload["sizes"] = self.sizes
        trc = comm.tracer
        if trc.enabled:
            trc.begin("rank_op", "comm", op=payload["name"])
            try:
                return comm.run_rank_op(payload, writes, reads, total_words)
            finally:
                trc.end()
        return comm.run_rank_op(payload, writes, reads, total_words)

    def _vec_writes(self, parts, base=0):
        return [
            (base + off, p) for off, p in zip(self.offsets, parts)
        ]

    def _vec_reads(self, base):
        return [
            (base + off, n) for off, n in zip(self.offsets, self.sizes)
        ]

    # -- ops -----------------------------------------------------------
    def matvec(self, x_parts, ext_vals, cache=None):
        """Worker-resident Eq. 48 products; ``cache=j`` retains the input
        slot ``z[j]`` for the final AXPY."""
        system = self.system
        comm = system.comm
        n = self.n_total
        ext_sizes = [len(e) for e in ext_vals]
        ext_offsets = [0]
        for m in ext_sizes:
            ext_offsets.append(ext_offsets[-1] + m)
        e_total = ext_offsets[-1]
        ext_offsets = ext_offsets[:-1]
        writes = self._vec_writes(x_parts) + [
            (n + eoff, e) for eoff, e in zip(ext_offsets, ext_vals)
        ]
        payload = {
            "name": "mv_rdd",
            "cache": None if cache is None else int(cache),
            "ext": n,
            "ext_offsets": ext_offsets,
            "ext_sizes": ext_sizes,
            "out": n + e_total,
        }
        out = self._dispatch(
            payload, writes, self._vec_reads(n + e_total), 2 * n + e_total
        )
        for r in range(len(self.sizes)):
            comm.add_flops(r, 2 * system.a_loc[r].nnz)
            if system.a_ext[r].shape[1]:
                comm.add_flops(r, 2 * system.a_ext[r].nnz + self.sizes[r])
        return out

    def matvec_block(self, x_parts, ext_vals):
        """Worker-resident batched Eq. 48 SpMMs over all ``k`` columns."""
        system = self.system
        comm = system.comm
        k = x_parts[0].shape[1]
        n = self.n_total
        ext_sizes = [len(e) for e in ext_vals]
        ext_offsets = [0]
        for m in ext_sizes:
            ext_offsets.append(ext_offsets[-1] + m)
        e_total = ext_offsets[-1]
        ext_offsets = ext_offsets[:-1]
        writes = [
            (off * k, p) for off, p in zip(self.offsets, x_parts)
        ] + [
            (n * k + eoff * k, e)
            for eoff, e in zip(ext_offsets, ext_vals)
        ]
        reads = [
            ((n + e_total) * k + off * k, sz * k)
            for off, sz in zip(self.offsets, self.sizes)
        ]
        payload = {
            "name": "mvb_rdd",
            "k": k,
            "ext": n * k,
            "ext_offsets": ext_offsets,
            "ext_sizes": ext_sizes,
            "out": (n + e_total) * k,
        }
        outs = self._dispatch(payload, writes, reads, (2 * n + e_total) * k)
        out = [o.reshape(sz, k) for o, sz in zip(outs, self.sizes)]
        for r in range(len(self.sizes)):
            comm.add_flops(r, 2 * system.a_loc[r].nnz * k)
            if system.a_ext[r].shape[1]:
                comm.add_flops(
                    r, 2 * system.a_ext[r].nnz * k + self.sizes[r] * k
                )
        return out

    def seed_basis(self, v0) -> None:
        """Reset the workers' basis mirror to the cycle's first vector."""
        self._dispatch(
            {"name": "seed", "two": False},
            self._vec_writes(v0),
            [],
            self.n_total,
        )

    def dot_fused(self, j, v, w, partial) -> None:
        """Fused CGS partial dots against the worker-resident basis;
        also caches ``w`` worker-side for the ortho/commit ops."""
        comm = self.system.comm
        n = self.n_total
        p = len(self.sizes)
        reads = [(n + r * (j + 1), j + 1) for r in range(p)]
        outs = self._dispatch(
            {"name": "dots", "j": j, "out": n},
            self._vec_writes(w),
            reads,
            n + p * (j + 1),
        )
        for r in range(p):
            partial[:, r] = outs[r]
            comm.add_flops(r, 2 * (j + 1) * self.sizes[r])

    def ortho(self, j, h, v, w):
        """Fused CGS update of the cached ``w``; only the coefficients
        cross the process boundary in."""
        comm = self.system.comm
        payload = {
            "name": "ortho",
            "j": j,
            "h": [float(h[i]) for i in range(j + 1)],
            "two": False,
        }
        outs = self._dispatch(payload, [], self._vec_reads(0), self.n_total)
        for r in range(len(self.sizes)):
            comm.add_flops(r, 2 * (j + 1) * self.sizes[r])
        return outs

    def arnoldi_step(self, j, h, v, w):
        """Fused dots + reduction + ortho in ONE dispatch; the
        orchestrator re-runs the real ``allreduce_sum`` on the partial
        rows it reads back (same tree pairing, same bits) so reduction
        charging, tracer spans and chaos call indices stay exactly where
        the inline path puts them."""
        comm = self.system.comm
        n = self.n_total
        p = len(self.sizes)
        pbase = n
        nflags = comm.pool_width()
        flags = pbase + p * (j + 1)
        payload = {
            "name": "arn",
            "j": j,
            "two": False,
            "partial": pbase,
            "flags": flags,
            "nflags": nflags,
            "btimeout": _btimeout(comm),
        }
        writes = self._vec_writes(w) + [(flags, np.zeros(nflags))]
        reads = self._vec_reads(0) + [
            (pbase + r * (j + 1), j + 1) for r in range(p)
        ]
        outs = self._dispatch(payload, writes, reads, flags + nflags)
        partial = np.zeros((j + 1, p))
        for r in range(p):
            partial[:, r] = outs[p + r]
            comm.add_flops(r, 2 * (j + 1) * self.sizes[r])
        h[: j + 1] = comm.allreduce_sum(list(partial.T), words=j + 1)
        for r in range(p):
            comm.add_flops(r, 2 * (j + 1) * self.sizes[r])
        return outs[:p]

    def poly_chain(self, precond, terms, v_parts):
        """One fused dispatch for a whole degree-``k`` polynomial apply.

        Workers run the recurrence against their resident block pairs,
        filling their halo buffers straight from the shared arena using
        the shipped exchange plan — O(1) pipe round-trips instead of
        O(k).  Returns None (caller stays inline) when the communicator
        cannot ship this plan; the inline charging is replayed afterwards
        by :func:`_replay_chain_charges` over the real recurrence."""
        comm = self.system.comm
        self.ensure_shipped()
        token = comm.resident_ship_plan(
            self.system.plan, self.sizes, self._halo_ext_sizes()
        )
        if token is None:
            return None
        n = self.n_total
        nflags = comm.pool_width()
        kind, params = terms
        payload = {
            "name": "chain",
            "mode": "rdd",
            "kind": kind,
            "params": params,
            "plan": token,
            "out": n,
            "slots": 2 * n,
            "n_total": n,
            "flags": 4 * n,
            "nflags": nflags,
            "btimeout": _btimeout(comm),
        }
        writes = self._vec_writes(v_parts) + [(4 * n, np.zeros(nflags))]
        out = self._dispatch(
            payload, writes, self._vec_reads(n), 4 * n + nflags
        )
        _replay_chain_charges(self, precond, "rdd")
        return out

    def prec_apply(self, precond, v_parts):
        """Block-Jacobi ILU0 apply against worker-resident factors: ONE
        dispatch instead of an orchestrator-side loop over rank solves.
        Factors ship once per generation through :meth:`ensure_aux`;
        charging mirrors the inline ``apply_parts`` exactly."""
        comm = self.system.comm
        self.ensure_aux(precond._resident_key, precond._resident_states)
        n = self.n_total
        payload = {
            "name": "prec",
            "key": precond._resident_key,
            "out": n,
        }
        out = self._dispatch(
            payload, self._vec_writes(v_parts), self._vec_reads(n), 2 * n
        )
        for r in range(len(self.sizes)):
            comm.add_flops(r, 2 * self.system.a_loc[r].nnz)
        return out

    def coarse_correct(self, tl, v_parts):
        """One fused dispatch for the two-level coarse correction (see
        :meth:`ResidentEDDEngine.coarse_correct`); the real coarse
        allreduce is replayed on the partial rows read back, so chaos
        plans aimed at it keep firing."""
        comm = self.system.comm
        self.ensure_aux(tl._resident_key, tl._resident_states)
        n = self.n_total
        p = len(self.sizes)
        nc = tl.n_coarse
        pbase = n
        obase = n + p * nc
        nflags = comm.pool_width()
        flags = obase + n
        trc = comm.tracer
        traced = trc.enabled
        if traced:
            trc.begin("coarse_solve", "solver", n_coarse=nc, k=1)
        payload = {
            "name": "coarse",
            "nc": nc,
            "key": tl._resident_key,
            "partial": pbase,
            "out": obase,
            "flags": flags,
            "nflags": nflags,
            "btimeout": _btimeout(comm),
        }
        writes = self._vec_writes(v_parts) + [(flags, np.zeros(nflags))]
        reads = [(pbase + r * nc, nc) for r in range(p)] + self._vec_reads(
            obase
        )
        outs = self._dispatch(payload, writes, reads, flags + nflags)
        for r in range(p):
            comm.add_flops(r, 2 * tl._wl_parts[r].size)
        comm.allreduce_sum(outs[:p], words=nc)
        comm.add_flops_all([2 * nc * nc] * p)
        for r in range(p):
            comm.add_flops(r, 2 * tl._wg_parts[r].size)
        if traced:
            trc.end()
        return outs[p:]

    def commit_basis(self, inv_h) -> None:
        """Append ``inv_h * w`` to the worker basis mirror from the cached
        slot (zero transfer); the orchestrator's append charges."""
        self._dispatch(
            {
                "name": "commit",
                "inv_h": float(inv_h),
                "two": False,
                "override": False,
            },
            [],
            [],
            1,
        )

    def axpy_update(self, x, y, z_store):
        """Solution update against the worker-cached ``z`` slots."""
        if len(y) == 0:
            return x
        comm = self.system.comm
        n = self.n_total
        payload = {
            "name": "axpy",
            "y": [float(yi) for yi in y],
            "out": n,
        }
        out = self._dispatch(
            payload, self._vec_writes(x), self._vec_reads(n), 2 * n
        )
        for r, sz in enumerate(self.sizes):
            comm.add_flops(r, 2 * len(y) * sz)
        return out
