"""Spawn entry point for :class:`~repro.parallel.process_comm.ProcessComm`
worker processes.

This module is deliberately light — numpy plus stdlib at import time, so
a spawned child never pays for the solver stack up front; the sparse CSR
layer is imported lazily on the first ``resident`` command.  The
orchestrator sends small pickled command tuples over a per-worker pipe;
bulk payloads travel through a per-communicator
``multiprocessing.shared_memory`` arena.

Protocol
--------
Commands are ``(op, seq, ...)`` tuples; every reply echoes the sequence
number: ``(seq, "ok", payload)`` or ``(seq, "err", traceback_text)``.
Data-plane commands additionally validate the arena's **header sequence
word** (the orchestrator stamps it immediately before dispatching): a
mismatch means the worker is looking at a stale or swapped segment and is
reported as an error instead of silently permuting the wrong bytes.

Rank striding matches :class:`~repro.parallel.thread_comm._WorkerPool`:
worker ``w`` of ``n`` owns ranks ``w, w + n, w + 2n, ...``.

Coverage note: everything below executes in spawned children, outside the
coverage tracer — hence the module-wide ``pragma: no cover``.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Bytes reserved at the start of every arena: ``uint64 seq`` plus one
#: padding word (keeps the float64 payload 16-byte aligned).
HEADER_BYTES = 16


def _attach(name: str):  # pragma: no cover - runs in spawned children
    """Attach to an orchestrator-owned segment.

    Python 3.11 registers *attaches* with the resource tracker too
    (bpo-39959).  Workers share the orchestrator's tracker process (the
    fd travels in the spawn preparation data), whose name cache is a set
    — so the duplicate registration is an idempotent no-op and must NOT
    be unregistered here: that would erase the orchestrator's own entry
    and break its unlink-time bookkeeping.
    """
    return shared_memory.SharedMemory(name=name)


def _arena_view(state, name, total_words, seq):  # pragma: no cover
    """Float64 view of the comm's arena, after the header-seq check."""
    if state.get("arena_name") != name:
        old = state.get("shm")
        if old is not None:
            old.close()
        state["shm"] = _attach(name)
        state["arena_name"] = name
    shm = state["shm"]
    header = np.ndarray((2,), dtype=np.uint64, buffer=shm.buf)
    if int(header[0]) != seq:
        raise RuntimeError(
            f"stale arena {name!r}: header seq {int(header[0])} != "
            f"command seq {seq}"
        )
    return np.ndarray(
        (total_words,), dtype=np.float64, buffer=shm.buf, offset=HEADER_BYTES
    )


def _owned(w, n_workers, size):  # pragma: no cover
    return range(w, size, n_workers)


def _do_gather(state, cmd, w, n_workers):  # pragma: no cover
    """``out[s] = glob[l2g[s]]`` for this worker's ranks (⊕Σ∂Ω gather)."""
    _op, seq, _cid, arena, k, n_global, total_words = cmd
    view = _arena_view(state, arena, total_words, seq)
    l2g = state["l2g"]
    sizes = state["sizes"]
    in_words = n_global * k
    glob = view[:in_words]
    if k > 1:
        glob = glob.reshape(n_global, k)
    offsets = state["gather_offsets"]
    times = []
    for s in _owned(w, n_workers, len(sizes)):
        t0 = time.perf_counter()
        off = in_words + offsets[s] * k
        dst = view[off:off + sizes[s] * k]
        if k > 1:
            dst = dst.reshape(sizes[s], k)
        dst[...] = glob[l2g[s]]
        times.append((s, time.perf_counter() - t0))
    return times


def _do_halo(state, cmd, w, n_workers):  # pragma: no cover
    """Receiver-centric halo fill for this worker's ranks."""
    _op, seq, _cid, arena, plan_id, k, total_words = cmd
    view = _arena_view(state, arena, total_words, seq)
    plan = state["plans"][plan_id]
    xsizes, ext_sizes = plan["xsizes"], plan["ext_sizes"]
    x_offsets, ext_offsets = plan["x_offsets"], plan["ext_offsets"]
    in_words = sum(xsizes) * k

    def x_part(t):
        off = x_offsets[t] * k
        part = view[off:off + xsizes[t] * k]
        return part.reshape(xsizes[t], k) if k > 1 else part

    times = []
    for s in _owned(w, n_workers, len(xsizes)):
        t0 = time.perf_counter()
        off = in_words + ext_offsets[s] * k
        buf = view[off:off + ext_sizes[s] * k]
        if k > 1:
            buf = buf.reshape(ext_sizes[s], k)
        buf[...] = 0.0
        for t, send_idx, recv_slots in plan["ranks"][s]:
            buf[recv_slots] = x_part(t)[send_idx]
        times.append((s, time.perf_counter() - t0))
    return times


def _do_reduce(state, cmd, w, n_workers):  # pragma: no cover
    """Fixed binary-tree reduction over the (P, m) rows in the arena.

    Worker 0 performs the whole tree (the reduction is a dependency
    chain, not a fan-out); other workers acknowledge immediately.  The
    pairing ``(v0+v1)+(v2+v3)...`` matches ``Comm._tree_reduce`` exactly,
    so the float64 result is bit-identical to the inline path.
    """
    _op, seq, _cid, arena, p_rows, m, total_words = cmd
    if w != 0:
        return []
    view = _arena_view(state, arena, total_words, seq)
    t0 = time.perf_counter()
    rows = view[:p_rows * m].reshape(p_rows, m)
    vals = [rows[i] for i in range(p_rows)]
    while len(vals) > 1:
        nxt = [vals[i] + vals[i + 1] for i in range(0, len(vals) - 1, 2)]
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    view[p_rows * m:(p_rows + 1) * m] = vals[0]
    return [(0, time.perf_counter() - t0)]


def _do_register(state, cmd):  # pragma: no cover
    payload = pickle.loads(cmd[3])
    state["l2g"] = payload["l2g"]
    state["sizes"] = payload["sizes"]
    offsets = [0]
    for n in payload["sizes"]:
        offsets.append(offsets[-1] + n)
    state["gather_offsets"] = offsets
    return []


def _do_plan(state, cmd):  # pragma: no cover
    plan_id = cmd[3]
    plan = pickle.loads(cmd[4])
    for key in ("x_offsets", "ext_offsets"):
        sizes = plan["xsizes" if key == "x_offsets" else "ext_sizes"]
        offsets = [0]
        for n in sizes:
            offsets.append(offsets[-1] + n)
        plan[key] = offsets
    state.setdefault("plans", {})[plan_id] = plan
    return []


def _do_resident(state, cmd, w, n_workers):  # pragma: no cover
    """Install one rank's resident solver state from the arena.

    The command's ``meta`` describes typed fields laid out in the arena;
    8-byte integer arrays crossed the float64 arena as raw bytes and are
    re-viewed here.  Only the owning worker (rank striding) keeps the
    state; a new generation id drops every older generation first.
    Imports of the sparse layer are lazy so spawned children stay light
    until a resident system actually arrives.
    """
    _op, seq, _cid, arena, total_words, meta = cmd
    res = state.get("resident")
    if res is None or res.get("gen") != meta["gen"]:
        res = {"gen": meta["gen"], "ranks": {}}
        state["resident"] = res
    r = meta["rank"]
    if r % n_workers != w:
        return []
    view = _arena_view(state, arena, total_words, seq)
    arrays = {}
    for name, dtype, shape, off in meta["fields"]:
        n_words = 1
        for s in shape:
            n_words *= s
        raw = np.array(view[off:off + n_words])
        arr = raw.view(np.int64) if dtype == "int64" else raw
        arrays[name] = arr.reshape(shape)
    from repro.sparse.csr import CSRMatrix

    entry = {"z": {}, "wl": None, "wh": None, "bl": [], "bh": []}
    if meta["kind"] == "edd":
        entry["a"] = CSRMatrix(
            meta["shape"], arrays["indptr"], arrays["indices"], arrays["data"]
        )
    else:
        entry["a_loc"] = CSRMatrix(
            meta["loc_shape"],
            arrays["loc_indptr"],
            arrays["loc_indices"],
            arrays["loc_data"],
        )
        entry["a_ext"] = CSRMatrix(
            meta["ext_shape"],
            arrays["ext_indptr"],
            arrays["ext_indices"],
            arrays["ext_data"],
        )
    res["ranks"][r] = entry
    return []


def _do_rank_op(state, cmd, w, n_workers):  # pragma: no cover
    """Execute one named rank operation against resident state.

    Every arithmetic expression below mirrors the orchestrator's inline
    engine token for token (same numpy calls, same association order), so
    the floats written back are bit-identical to inline execution.
    """
    _op, seq, _cid, arena, total_words, p = cmd
    name = p["name"]
    if name == "stall":
        # Test-only fault: a worker that hangs mid-rank-op.
        time.sleep(float(p["seconds"]))
        return []
    res = state.get("resident")
    if res is None or res.get("gen") != p["gen"]:
        raise RuntimeError(
            f"resident generation {p.get('gen')!r} is not shipped to "
            f"worker {w} (respawned pool?); the orchestrator must re-ship"
        )
    from repro.sparse import kernels

    kernels.set_backend(p["backend"])
    view = _arena_view(state, arena, total_words, seq)
    offsets = p["offsets"]
    sizes = p["sizes"]
    times = []
    for r in _owned(w, n_workers, len(sizes)):
        t0 = time.perf_counter()
        e = res["ranks"][r]
        off = offsets[r]
        n = sizes[r]
        if name == "mv":
            x = np.array(view[off:off + n])
            y = e["a"].matvec(x)
            if p["cache"] is not None:
                e["z"][p["cache"]] = x
                e["wl"] = y
            view[p["out"] + off:p["out"] + off + n] = y
        elif name == "mvb":
            k = p["k"]
            x = np.array(view[off * k:(off + n) * k]).reshape(n, k)
            y = e["a"].matmat(x)
            view[p["out"] + off * k:p["out"] + (off + n) * k] = y.ravel()
        elif name == "mv_rdd":
            eoff = p["ext_offsets"][r]
            en = p["ext_sizes"][r]
            x = np.array(view[off:off + n])
            y = e["a_loc"].matvec(x)
            if e["a_ext"].shape[1]:
                ext = np.array(view[p["ext"] + eoff:p["ext"] + eoff + en])
                y = y + e["a_ext"].matvec(ext)
            if p["cache"] is not None:
                e["z"][p["cache"]] = x
            view[p["out"] + off:p["out"] + off + n] = y
        elif name == "mvb_rdd":
            k = p["k"]
            eoff = p["ext_offsets"][r]
            en = p["ext_sizes"][r]
            x = np.array(view[off * k:(off + n) * k]).reshape(n, k)
            y = e["a_loc"].matmat(x)
            if e["a_ext"].shape[1]:
                ext = np.array(
                    view[p["ext"] + eoff * k:p["ext"] + (eoff + en) * k]
                ).reshape(en, k)
                y = y + e["a_ext"].matmat(ext)
            view[p["out"] + off * k:p["out"] + (off + n) * k] = y.ravel()
        elif name == "seed":
            e["z"] = {}
            e["wl"] = None
            e["wh"] = None
            e["bl"] = [np.array(view[off:off + n])]
            if p["two"]:
                e["bh"] = [np.array(view[p["hat"] + off:p["hat"] + off + n])]
            else:
                e["bh"] = []
        elif name == "dots":
            j = p["j"]
            wvec = np.array(view[off:off + n])
            e["wh"] = wvec
            bl = e["bl"]
            out = np.empty(j + 1)
            for i in range(j + 1):
                out[i] = bl[i] @ wvec
            o = p["out"] + r * (j + 1)
            view[o:o + j + 1] = out
        elif name == "ortho":
            j = p["j"]
            h = p["h"]
            wh = e["wh"]
            if p["two"]:
                wl = e["wl"]
                bl, bh = e["bl"], e["bh"]
                for i in range(j + 1):
                    hi = h[i]
                    wl = wl - hi * bl[i]
                    wh = wh - hi * bh[i]
                e["wl"] = wl
                e["wh"] = wh
                view[off:off + n] = wl
                view[p["hat"] + off:p["hat"] + off + n] = wh
            else:
                bl = e["bl"]
                for i in range(j + 1):
                    wh = wh - h[i] * bl[i]
                e["wh"] = wh
                view[off:off + n] = wh
        elif name == "commit":
            inv_h = p["inv_h"]
            if p["two"]:
                e["bl"].append(inv_h * e["wl"])
                hat = np.array(view[off:off + n]) if p["override"] else e["wh"]
                e["bh"].append(inv_h * hat)
            else:
                e["bl"].append(inv_h * e["wh"])
        elif name == "axpy":
            x = np.array(view[off:off + n])
            z = e["z"]
            for i, yi in enumerate(p["y"]):
                x = x + yi * z[i]
            view[p["out"] + off:p["out"] + off + n] = x
        else:
            raise ValueError(f"unknown rank op {name!r}")
        times.append((r, time.perf_counter() - t0))
    return times


def _release(state):  # pragma: no cover
    shm = state.get("shm")
    if shm is not None:
        shm.close()


def worker_main(w: int, n_workers: int, conn) -> None:  # pragma: no cover
    """Worker process body: park on the pipe, execute commands forever.

    ``REPRO_COMM_WORKER`` advertises the worker context to the
    nested-comm guard (:func:`repro.parallel.comm.guard_nested_comm`) in
    case user code ever runs here.
    """
    os.environ["REPRO_COMM_WORKER"] = "process"
    comms: dict = {}
    try:
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break
            op = cmd[0]
            if op == "shutdown":
                break
            seq = cmd[1]
            try:
                if op == "ping":
                    result = []
                elif op == "sleep":
                    # Test-only fault: simulate a stalled worker so the
                    # orchestrator's per-call timeout can be exercised.
                    time.sleep(float(cmd[2]))
                    result = []
                else:
                    state = comms.setdefault(cmd[2], {})
                    if op == "register":
                        result = _do_register(state, cmd)
                    elif op == "plan":
                        result = _do_plan(state, cmd)
                    elif op == "gather":
                        result = _do_gather(state, cmd, w, n_workers)
                    elif op == "halo":
                        result = _do_halo(state, cmd, w, n_workers)
                    elif op == "reduce":
                        result = _do_reduce(state, cmd, w, n_workers)
                    elif op == "resident":
                        result = _do_resident(state, cmd, w, n_workers)
                    elif op == "rankop":
                        result = _do_rank_op(state, cmd, w, n_workers)
                    elif op == "release":
                        _release(state)
                        comms.pop(cmd[2], None)
                        result = []
                    else:
                        raise ValueError(f"unknown worker op {op!r}")
                conn.send((seq, "ok", result))
            except BaseException:
                try:
                    conn.send((seq, "err", traceback.format_exc()))
                except (OSError, BrokenPipeError):
                    break
    finally:
        for state in comms.values():
            _release(state)
        try:
            conn.close()
        except OSError:
            pass
