"""Spawn entry point for :class:`~repro.parallel.process_comm.ProcessComm`
worker processes.

This module is deliberately light — numpy plus stdlib at import time, so
a spawned child never pays for the solver stack up front; the sparse CSR
layer is imported lazily on the first ``resident`` command.  The
orchestrator sends small pickled command tuples over a per-worker pipe;
bulk payloads travel through a per-communicator
``multiprocessing.shared_memory`` arena.

Protocol
--------
Commands are ``(op, seq, ...)`` tuples; every reply echoes the sequence
number: ``(seq, "ok", payload)`` or ``(seq, "err", traceback_text)``.
Data-plane commands additionally validate the arena's **header sequence
word** (the orchestrator stamps it immediately before dispatching): a
mismatch means the worker is looking at a stale or swapped segment and is
reported as an error instead of silently permuting the wrong bytes.

Rank striding matches :class:`~repro.parallel.thread_comm._WorkerPool`:
worker ``w`` of ``n`` owns ranks ``w, w + n, w + 2n, ...``.

Coverage note: everything below executes in spawned children, outside the
coverage tracer — hence the module-wide ``pragma: no cover``.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Bytes reserved at the start of every arena: ``uint64 seq`` plus one
#: padding word (keeps the float64 payload 16-byte aligned).
HEADER_BYTES = 16


def _attach(name: str):  # pragma: no cover - runs in spawned children
    """Attach to an orchestrator-owned segment.

    Python 3.11 registers *attaches* with the resource tracker too
    (bpo-39959).  Workers share the orchestrator's tracker process (the
    fd travels in the spawn preparation data), whose name cache is a set
    — so the duplicate registration is an idempotent no-op and must NOT
    be unregistered here: that would erase the orchestrator's own entry
    and break its unlink-time bookkeeping.
    """
    return shared_memory.SharedMemory(name=name)


def _arena_view(state, name, total_words, seq):  # pragma: no cover
    """Float64 view of the comm's arena, after the header-seq check."""
    if state.get("arena_name") != name:
        old = state.get("shm")
        if old is not None:
            old.close()
        state["shm"] = _attach(name)
        state["arena_name"] = name
    shm = state["shm"]
    header = np.ndarray((2,), dtype=np.uint64, buffer=shm.buf)
    if int(header[0]) != seq:
        raise RuntimeError(
            f"stale arena {name!r}: header seq {int(header[0])} != "
            f"command seq {seq}"
        )
    return np.ndarray(
        (total_words,), dtype=np.float64, buffer=shm.buf, offset=HEADER_BYTES
    )


def _owned(w, n_workers, size):  # pragma: no cover
    return range(w, size, n_workers)


def _do_gather(state, cmd, w, n_workers):  # pragma: no cover
    """``out[s] = glob[l2g[s]]`` for this worker's ranks (⊕Σ∂Ω gather)."""
    _op, seq, _cid, arena, k, n_global, total_words = cmd
    view = _arena_view(state, arena, total_words, seq)
    l2g = state["l2g"]
    sizes = state["sizes"]
    in_words = n_global * k
    glob = view[:in_words]
    if k > 1:
        glob = glob.reshape(n_global, k)
    offsets = state["gather_offsets"]
    times = []
    for s in _owned(w, n_workers, len(sizes)):
        t0 = time.perf_counter()
        off = in_words + offsets[s] * k
        dst = view[off:off + sizes[s] * k]
        if k > 1:
            dst = dst.reshape(sizes[s], k)
        dst[...] = glob[l2g[s]]
        times.append((s, time.perf_counter() - t0))
    return times


def _do_halo(state, cmd, w, n_workers):  # pragma: no cover
    """Receiver-centric halo fill for this worker's ranks."""
    _op, seq, _cid, arena, plan_id, k, total_words = cmd
    view = _arena_view(state, arena, total_words, seq)
    plan = state["plans"][plan_id]
    xsizes, ext_sizes = plan["xsizes"], plan["ext_sizes"]
    x_offsets, ext_offsets = plan["x_offsets"], plan["ext_offsets"]
    in_words = sum(xsizes) * k

    def x_part(t):
        off = x_offsets[t] * k
        part = view[off:off + xsizes[t] * k]
        return part.reshape(xsizes[t], k) if k > 1 else part

    times = []
    for s in _owned(w, n_workers, len(xsizes)):
        t0 = time.perf_counter()
        off = in_words + ext_offsets[s] * k
        buf = view[off:off + ext_sizes[s] * k]
        if k > 1:
            buf = buf.reshape(ext_sizes[s], k)
        buf[...] = 0.0
        for t, send_idx, recv_slots in plan["ranks"][s]:
            buf[recv_slots] = x_part(t)[send_idx]
        times.append((s, time.perf_counter() - t0))
    return times


def _do_reduce(state, cmd, w, n_workers):  # pragma: no cover
    """Fixed binary-tree reduction over the (P, m) rows in the arena.

    Worker 0 performs the whole tree (the reduction is a dependency
    chain, not a fan-out); other workers acknowledge immediately.  The
    pairing ``(v0+v1)+(v2+v3)...`` matches ``Comm._tree_reduce`` exactly,
    so the float64 result is bit-identical to the inline path.
    """
    _op, seq, _cid, arena, p_rows, m, total_words = cmd
    if w != 0:
        return []
    view = _arena_view(state, arena, total_words, seq)
    t0 = time.perf_counter()
    rows = view[:p_rows * m].reshape(p_rows, m)
    vals = [rows[i] for i in range(p_rows)]
    while len(vals) > 1:
        nxt = [vals[i] + vals[i + 1] for i in range(0, len(vals) - 1, 2)]
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    view[p_rows * m:(p_rows + 1) * m] = vals[0]
    return [(0, time.perf_counter() - t0)]


def _do_register(state, cmd):  # pragma: no cover
    payload = pickle.loads(cmd[3])
    state["l2g"] = payload["l2g"]
    state["sizes"] = payload["sizes"]
    offsets = [0]
    for n in payload["sizes"]:
        offsets.append(offsets[-1] + n)
    state["gather_offsets"] = offsets
    return []


def _do_plan(state, cmd):  # pragma: no cover
    plan_id = cmd[3]
    plan = pickle.loads(cmd[4])
    for key in ("x_offsets", "ext_offsets"):
        sizes = plan["xsizes" if key == "x_offsets" else "ext_sizes"]
        offsets = [0]
        for n in sizes:
            offsets.append(offsets[-1] + n)
        plan[key] = offsets
    state.setdefault("plans", {})[plan_id] = plan
    return []


def _read_fields(view, fields):  # pragma: no cover
    """Rebuild typed arrays from a ``resident`` command's field table.

    8-byte integer arrays crossed the float64 arena as raw bytes and are
    re-viewed here; every shipped array is float64 or int64 by contract.
    """
    arrays = {}
    for name, dtype, shape, off in fields:
        n_words = 1
        for s in shape:
            n_words *= s
        raw = np.array(view[off:off + n_words])
        arr = raw.view(np.int64) if dtype == "int64" else raw
        arrays[name] = arr.reshape(shape)
    return arrays


def _do_resident(state, cmd, w, n_workers):  # pragma: no cover
    """Install resident solver state from the arena.

    Base kinds (``edd``/``rdd``) install one rank's CSR blocks; a new
    generation id drops every older generation first and only the owning
    worker (rank striding) keeps the state.  Aux kinds attach
    preconditioner state to an existing generation: ``aux`` per owning
    rank (ILU factors, coarse restriction bases), ``aux_shared`` kept by
    every worker (the small redundant factorized coarse matrix).  Aux
    arriving for an unknown generation raises — the orchestrator must
    ship the base system first.  Imports of the sparse layer are lazy so
    spawned children stay light until a resident system actually arrives.
    """
    _op, seq, _cid, arena, total_words, meta = cmd
    res = state.get("resident")
    kind = meta["kind"]
    if kind in ("aux", "aux_shared"):
        if res is None or res.get("gen") != meta["gen"]:
            raise RuntimeError(
                f"aux resident state for generation {meta.get('gen')!r} "
                f"arrived at worker {w} before its base system"
            )
        if kind == "aux":
            r = meta["rank"]
            if r % n_workers != w:
                return []
        view = _arena_view(state, arena, total_words, seq)
        box = {"arrays": _read_fields(view, meta["fields"]), "meta": meta}
        if kind == "aux_shared":
            res["shared"][meta["key"]] = box
        else:
            res["ranks"][r].setdefault("aux", {})[meta["key"]] = box
        return []
    if res is None or res.get("gen") != meta["gen"]:
        res = {"gen": meta["gen"], "ranks": {}, "shared": {}}
        state["resident"] = res
    r = meta["rank"]
    if r % n_workers != w:
        return []
    view = _arena_view(state, arena, total_words, seq)
    arrays = _read_fields(view, meta["fields"])
    from repro.sparse.csr import CSRMatrix

    entry = {"z": {}, "wl": None, "wh": None, "bl": [], "bh": []}
    if kind == "edd":
        entry["a"] = CSRMatrix(
            meta["shape"], arrays["indptr"], arrays["indices"], arrays["data"]
        )
    else:
        entry["a_loc"] = CSRMatrix(
            meta["loc_shape"],
            arrays["loc_indptr"],
            arrays["loc_indices"],
            arrays["loc_data"],
        )
        entry["a_ext"] = CSRMatrix(
            meta["ext_shape"],
            arrays["ext_indptr"],
            arrays["ext_indices"],
            arrays["ext_data"],
        )
    res["ranks"][r] = entry
    return []


def _barrier(view, flags_off, nflags, w, phase, deadline):  # pragma: no cover
    """Arena spin barrier for fused rank ops.

    Each pool worker owns one float64 flag word; a worker signals phase
    ``p`` by storing ``p`` into its word (an aligned 8-byte store, atomic
    on every supported platform) and then spins until every peer's word
    has reached ``p``.  A relative ``deadline`` bounds the spin so a dead
    or stuck peer surfaces as this worker's error reply instead of a
    deadlock — the orchestrator drains every reply and raises the first
    error through its named taxonomy.
    """
    flags = view[flags_off:flags_off + nflags]
    flags[w] = float(phase)
    while True:
        done = True
        for i in range(nflags):
            if flags[i] < phase:
                done = False
                break
        if done:
            return
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"worker {w} timed out waiting for peers at fused-op "
                f"barrier phase {phase}"
            )
        time.sleep(0)


def _tree_rows(view, off, p_rows, m):  # pragma: no cover
    """Fixed binary-tree reduction over ``(p_rows, m)`` arena rows.

    The pairing ``(v0+v1)+(v2+v3)...`` matches ``Comm._tree_reduce``
    exactly, so the float64 result is bit-identical to the inline
    allreduce every worker replays redundantly after a fused barrier.
    """
    rows = view[off:off + p_rows * m].reshape(p_rows, m)
    vals = [rows[i] for i in range(p_rows)]
    while len(vals) > 1:
        nxt = [vals[i] + vals[i + 1] for i in range(0, len(vals) - 1, 2)]
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]


def _do_chain(state, res, view, p, w, n_workers):  # pragma: no cover
    """Fused degree-``k`` polynomial apply: the whole matvec/recurrence
    chain runs worker-side with one barrier per degree.

    Arena layout: ``[0, n)`` input, ``[n, 2n)`` output, ``[2n, 3n)`` and
    ``[3n, 4n)`` ping-pong exchange slots, flag words after.  Each degree
    publishes into slot ``d % 2``; the ping-pong is safe because a worker
    can only overwrite slot ``d % 2`` at degree ``d + 2`` after passing
    barrier ``d + 2``, which peers only signal once they finished reading
    slot ``d``.  EDD workers redundantly replay the interface assembly
    (same zeros + ordered ``np.add.at`` as ``Comm.interface_assemble``);
    RDD workers fill their halo buffers straight from the slot using the
    resident exchange plan.  Recurrence bodies mirror the generic
    ``apply_linear`` paths of the polynomial preconditioners token for
    token.
    """
    offsets, sizes = p["offsets"], p["sizes"]
    size = len(sizes)
    mode = p["mode"]
    kind = p["kind"]
    prm = p["params"]
    out_base = p["out"]
    slot_base = p["slots"]
    n_total = p["n_total"]
    deadline = time.monotonic() + p["btimeout"]
    owned = list(_owned(w, n_workers, size))
    rank_t = dict.fromkeys(owned, 0.0)

    def part(base, r):
        off = offsets[r]
        return view[base + off:base + off + sizes[r]]

    v = {r: np.array(part(0, r)) for r in owned}
    if kind == "neumann":
        degree = prm["degree"]
        omega = prm["omega"]
        s = dict(v)
        z = dict(v)
        cur = s
    elif kind == "cheb":
        coef = prm["coef"]
        degree = len(coef) - 1
        z = {r: coef[-1] * v[r] for r in owned}
        cur = z
    else:  # gls
        a, b, mu = prm["a"], prm["b"], prm["mu"]
        degree = prm["degree"]
        phi = {r: (1.0 / b[0]) * v[r] for r in owned}
        phi_prev = None
        z = {r: mu[0] * phi[r] for r in owned}
        cur = phi

    plan = state["plans"][p["plan"]] if mode == "rdd" else None

    for d in range(degree):
        slot = slot_base + (d % 2) * n_total
        for r in owned:
            t0 = time.perf_counter()
            if mode == "edd":
                # Publish the matvec result; assembly follows the barrier.
                part(slot, r)[...] = res["ranks"][r]["a"].matvec(cur[r])
            else:
                # Publish the operand; peers read it for their halos.
                part(slot, r)[...] = cur[r]
            rank_t[r] += time.perf_counter() - t0
        _barrier(view, p["flags"], p["nflags"], w, d + 1, deadline)
        g = {}
        if mode == "edd":
            l2g = state["l2g"]
            glob = np.zeros(p["n_global"])
            for t in range(size):
                np.add.at(glob, l2g[t], part(slot, t))
            for r in owned:
                g[r] = glob[l2g[r]]
        else:
            xsizes = plan["xsizes"]
            x_offsets = plan["x_offsets"]
            for r in owned:
                t0 = time.perf_counter()
                buf = np.zeros(plan["ext_sizes"][r])
                for t, send_idx, recv_slots in plan["ranks"][r]:
                    xoff = x_offsets[t]
                    buf[recv_slots] = view[
                        slot + xoff:slot + xoff + xsizes[t]
                    ][send_idx]
                e = res["ranks"][r]
                y = e["a_loc"].matvec(cur[r])
                if e["a_ext"].shape[1]:
                    y = y + e["a_ext"].matvec(buf)
                g[r] = y
                rank_t[r] += time.perf_counter() - t0
        t0 = time.perf_counter()
        if kind == "neumann":
            for r in owned:
                s[r] = s[r] - omega * g[r]
                z[r] = z[r] + s[r]
            cur = s
        elif kind == "cheb":
            c = coef[len(coef) - 2 - d]
            for r in owned:
                z[r] = g[r] + c * v[r]
            cur = z
        else:
            nxt = {}
            for r in owned:
                t_ = g[r] - a[d] * phi[r]
                if phi_prev is not None:
                    t_ = t_ - b[d] * phi_prev[r]
                nxt[r] = (1.0 / b[d + 1]) * t_
                z[r] = z[r] + mu[d + 1] * nxt[r]
            phi_prev, phi = phi, nxt
            cur = phi
        if owned:
            dt = (time.perf_counter() - t0) / len(owned)
            for r in owned:
                rank_t[r] += dt
    for r in owned:
        if kind == "neumann":
            part(out_base, r)[...] = omega * z[r]
        else:
            part(out_base, r)[...] = z[r]
    return [(r, t) for r, t in rank_t.items()]


def _do_arn(res, view, p, w, n_workers):  # pragma: no cover
    """Fused Arnoldi step: partial dots, redundant tree reduction of the
    ``(P, j+1)`` rows, and the CGS orthogonalization update — one
    dispatch, one barrier.

    The orchestrator re-runs the *real* ``allreduce_sum`` on the partial
    rows it reads back (identical tree pairing, so identical bits) to
    keep reduction charging, tracer spans and chaos targeting exactly
    where the inline path puts them.
    """
    offsets, sizes = p["offsets"], p["sizes"]
    size = len(sizes)
    j = p["j"]
    two = p["two"]
    pbase = p["partial"]
    deadline = time.monotonic() + p["btimeout"]
    owned = list(_owned(w, n_workers, size))
    rank_t = dict.fromkeys(owned, 0.0)
    for r in owned:
        t0 = time.perf_counter()
        e = res["ranks"][r]
        off, n = offsets[r], sizes[r]
        wvec = np.array(view[off:off + n])
        e["wh"] = wvec
        bl = e["bl"]
        out = np.empty(j + 1)
        for i in range(j + 1):
            out[i] = bl[i] @ wvec
        o = pbase + r * (j + 1)
        view[o:o + j + 1] = out
        rank_t[r] += time.perf_counter() - t0
    _barrier(view, p["flags"], p["nflags"], w, 1, deadline)
    h = _tree_rows(view, pbase, size, j + 1)
    for r in owned:
        t0 = time.perf_counter()
        e = res["ranks"][r]
        off, n = offsets[r], sizes[r]
        wh = e["wh"]
        if two:
            wl = e["wl"]
            bl, bh = e["bl"], e["bh"]
            for i in range(j + 1):
                hi = h[i]
                wl = wl - hi * bl[i]
                wh = wh - hi * bh[i]
            e["wl"] = wl
            e["wh"] = wh
            view[off:off + n] = wl
            view[p["hat"] + off:p["hat"] + off + n] = wh
        else:
            bl = e["bl"]
            for i in range(j + 1):
                wh = wh - h[i] * bl[i]
            e["wh"] = wh
            view[off:off + n] = wh
        rank_t[r] += time.perf_counter() - t0
    return [(r, t) for r, t in rank_t.items()]


def _do_coarse(res, view, p, w, n_workers):  # pragma: no cover
    """Fused two-level coarse correction: restriction, redundant tree
    reduction, redundant (small, dense) coarse solve and prolongation —
    one dispatch, one barrier.

    Every worker solves the redundantly-stored factorized Galerkin
    system itself (``nc`` is tiny), so no second exchange is needed; the
    orchestrator replays the real ``allreduce_sum`` on the partial rows
    for charging/chaos exactly as :func:`_do_arn` does.
    """
    offsets, sizes = p["offsets"], p["sizes"]
    size = len(sizes)
    nc = p["nc"]
    key = p["key"]
    pbase = p["partial"]
    obase = p["out"]
    deadline = time.monotonic() + p["btimeout"]
    owned = list(_owned(w, n_workers, size))
    rank_t = dict.fromkeys(owned, 0.0)
    for r in owned:
        t0 = time.perf_counter()
        aux = res["ranks"][r]["aux"][key]["arrays"]
        off, n = offsets[r], sizes[r]
        vr = np.array(view[off:off + n])
        view[pbase + r * nc:pbase + (r + 1) * nc] = aux["wl"].T @ vr
        rank_t[r] += time.perf_counter() - t0
    _barrier(view, p["flags"], p["nflags"], w, 1, deadline)
    rhs = _tree_rows(view, pbase, size, nc)
    shared = res["shared"][key]
    smeta = shared["meta"]
    fmat = shared["arrays"]["fmat"]
    if smeta["fkind"] == "cho":
        from scipy.linalg import cho_solve

        y = cho_solve((fmat, smeta["lower"]), rhs)
    else:
        from scipy.linalg import lu_solve

        piv = shared["arrays"]["piv"].astype(np.int32)
        y = lu_solve((fmat, piv), rhs)
    for r in owned:
        t0 = time.perf_counter()
        aux = res["ranks"][r]["aux"][key]["arrays"]
        off, n = offsets[r], sizes[r]
        view[obase + off:obase + off + n] = aux["wg"] @ y
        rank_t[r] += time.perf_counter() - t0
    return [(r, t) for r, t in rank_t.items()]


def _do_rank_op(state, cmd, w, n_workers):  # pragma: no cover
    """Execute one named rank operation against resident state.

    Every arithmetic expression below mirrors the orchestrator's inline
    engine token for token (same numpy calls, same association order), so
    the floats written back are bit-identical to inline execution.
    """
    _op, seq, _cid, arena, total_words, p = cmd
    name = p["name"]
    if name == "stall":
        # Test-only fault: a worker that hangs mid-rank-op.
        time.sleep(float(p["seconds"]))
        return []
    res = state.get("resident")
    if res is None or res.get("gen") != p["gen"]:
        raise RuntimeError(
            f"resident generation {p.get('gen')!r} is not shipped to "
            f"worker {w} (respawned pool?); the orchestrator must re-ship"
        )
    from repro.sparse import kernels

    kernels.set_backend(p["backend"])
    view = _arena_view(state, arena, total_words, seq)
    if name == "chain":
        return _do_chain(state, res, view, p, w, n_workers)
    if name == "arn":
        return _do_arn(res, view, p, w, n_workers)
    if name == "coarse":
        return _do_coarse(res, view, p, w, n_workers)
    offsets = p["offsets"]
    sizes = p["sizes"]
    times = []
    for r in _owned(w, n_workers, len(sizes)):
        t0 = time.perf_counter()
        e = res["ranks"][r]
        off = offsets[r]
        n = sizes[r]
        if name == "mv":
            x = np.array(view[off:off + n])
            y = e["a"].matvec(x)
            if p["cache"] is not None:
                e["z"][p["cache"]] = x
                e["wl"] = y
            view[p["out"] + off:p["out"] + off + n] = y
        elif name == "mvb":
            k = p["k"]
            x = np.array(view[off * k:(off + n) * k]).reshape(n, k)
            y = e["a"].matmat(x)
            view[p["out"] + off * k:p["out"] + (off + n) * k] = y.ravel()
        elif name == "mv_rdd":
            eoff = p["ext_offsets"][r]
            en = p["ext_sizes"][r]
            x = np.array(view[off:off + n])
            y = e["a_loc"].matvec(x)
            if e["a_ext"].shape[1]:
                ext = np.array(view[p["ext"] + eoff:p["ext"] + eoff + en])
                y = y + e["a_ext"].matvec(ext)
            if p["cache"] is not None:
                e["z"][p["cache"]] = x
            view[p["out"] + off:p["out"] + off + n] = y
        elif name == "mvb_rdd":
            k = p["k"]
            eoff = p["ext_offsets"][r]
            en = p["ext_sizes"][r]
            x = np.array(view[off * k:(off + n) * k]).reshape(n, k)
            y = e["a_loc"].matmat(x)
            if e["a_ext"].shape[1]:
                ext = np.array(
                    view[p["ext"] + eoff * k:p["ext"] + (eoff + en) * k]
                ).reshape(en, k)
                y = y + e["a_ext"].matmat(ext)
            view[p["out"] + off * k:p["out"] + (off + n) * k] = y.ravel()
        elif name == "seed":
            e["z"] = {}
            e["wl"] = None
            e["wh"] = None
            e["bl"] = [np.array(view[off:off + n])]
            if p["two"]:
                e["bh"] = [np.array(view[p["hat"] + off:p["hat"] + off + n])]
            else:
                e["bh"] = []
        elif name == "dots":
            j = p["j"]
            wvec = np.array(view[off:off + n])
            e["wh"] = wvec
            bl = e["bl"]
            out = np.empty(j + 1)
            for i in range(j + 1):
                out[i] = bl[i] @ wvec
            o = p["out"] + r * (j + 1)
            view[o:o + j + 1] = out
        elif name == "ortho":
            j = p["j"]
            h = p["h"]
            wh = e["wh"]
            if p["two"]:
                wl = e["wl"]
                bl, bh = e["bl"], e["bh"]
                for i in range(j + 1):
                    hi = h[i]
                    wl = wl - hi * bl[i]
                    wh = wh - hi * bh[i]
                e["wl"] = wl
                e["wh"] = wh
                view[off:off + n] = wl
                view[p["hat"] + off:p["hat"] + off + n] = wh
            else:
                bl = e["bl"]
                for i in range(j + 1):
                    wh = wh - h[i] * bl[i]
                e["wh"] = wh
                view[off:off + n] = wh
        elif name == "commit":
            inv_h = p["inv_h"]
            if p["two"]:
                e["bl"].append(inv_h * e["wl"])
                hat = np.array(view[off:off + n]) if p["override"] else e["wh"]
                e["bh"].append(inv_h * hat)
            else:
                e["bl"].append(inv_h * e["wh"])
        elif name == "axpy":
            x = np.array(view[off:off + n])
            z = e["z"]
            for i, yi in enumerate(p["y"]):
                x = x + yi * z[i]
            view[p["out"] + off:p["out"] + off + n] = x
        elif name == "prec":
            # Block-Jacobi ILU0 apply against the shipped factors; the
            # arena copy mirrors the inline ``z = v.copy()`` and the
            # backend solve is the same kernel the inline path runs.
            aux = e["aux"][p["key"]]["arrays"]
            zv = np.array(view[off:off + n])
            kernels.get_backend().ilu0_solve(
                aux["indptr"],
                aux["indices"],
                aux["data"],
                aux["diag_pos"],
                aux["split"],
                zv,
            )
            view[p["out"] + off:p["out"] + off + n] = zv
        else:
            raise ValueError(f"unknown rank op {name!r}")
        times.append((r, time.perf_counter() - t0))
    return times


def _release(state):  # pragma: no cover
    shm = state.get("shm")
    if shm is not None:
        shm.close()


def worker_main(w: int, n_workers: int, conn) -> None:  # pragma: no cover
    """Worker process body: park on the pipe, execute commands forever.

    ``REPRO_COMM_WORKER`` advertises the worker context to the
    nested-comm guard (:func:`repro.parallel.comm.guard_nested_comm`) in
    case user code ever runs here.
    """
    os.environ["REPRO_COMM_WORKER"] = "process"
    comms: dict = {}
    try:
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break
            op = cmd[0]
            if op == "shutdown":
                break
            seq = cmd[1]
            try:
                if op == "ping":
                    result = []
                elif op == "sleep":
                    # Test-only fault: simulate a stalled worker so the
                    # orchestrator's per-call timeout can be exercised.
                    time.sleep(float(cmd[2]))
                    result = []
                else:
                    state = comms.setdefault(cmd[2], {})
                    if op == "register":
                        result = _do_register(state, cmd)
                    elif op == "plan":
                        result = _do_plan(state, cmd)
                    elif op == "gather":
                        result = _do_gather(state, cmd, w, n_workers)
                    elif op == "halo":
                        result = _do_halo(state, cmd, w, n_workers)
                    elif op == "reduce":
                        result = _do_reduce(state, cmd, w, n_workers)
                    elif op == "resident":
                        result = _do_resident(state, cmd, w, n_workers)
                    elif op == "rankop":
                        result = _do_rank_op(state, cmd, w, n_workers)
                    elif op == "release":
                        _release(state)
                        comms.pop(cmd[2], None)
                        result = []
                    else:
                        raise ValueError(f"unknown worker op {op!r}")
                conn.send((seq, "ok", result))
            except BaseException:
                try:
                    conn.send((seq, "err", traceback.format_exc()))
                except (OSError, BrokenPipeError):
                    break
    finally:
        for state in comms.values():
            _release(state)
        try:
            conn.close()
        except OSError:
            pass
