"""Simulated message-passing substrate.

The paper ran C + MPI on an IBM SP2 and an SGI Origin.  Here the same SPMD
algorithms execute rank-parallel inside one process: every collective the
MPI code would issue (nearest-neighbour interface exchange, halo
scatter/gather, allreduce) goes through :class:`VirtualComm`, which performs
the data movement *and* charges each rank's :class:`RankStats` with the
exact message counts, word volumes and flops.  :mod:`repro.parallel.machine`
then converts those counters into modeled wall-clock time on calibrated
SP2/Origin machine models, from which the speedup studies (Table 3,
Figs. 15-17) are regenerated.

Four interchangeable :class:`Comm` backends execute the SPMD rank loops:
the deterministic single-thread :class:`VirtualComm` (default), the
shared-memory :class:`~repro.parallel.thread_comm.ThreadComm`, which runs
rank bodies on a persistent worker pool, the GIL-escaping
:class:`~repro.parallel.process_comm.ProcessComm`, which fans the
collective data plane out to spawned worker processes over
``multiprocessing.shared_memory``, and the fault-injecting
:class:`~repro.parallel.chaos.ChaosComm` proxy, which wraps any of the
others under a seeded :class:`~repro.parallel.chaos.FaultPlan`.  All
share the collective implementations of the :class:`Comm` base class, so
results are bit-identical (the chaos proxy with an empty plan included);
select with :func:`make_comm` / :func:`set_comm_backend` / the
``REPRO_COMM_BACKEND`` environment variable.
"""

from repro.parallel.stats import CommStats, RankStats
from repro.parallel.comm import (
    Comm,
    NestedCommError,
    VirtualComm,
    available_comm_backends,
    current_worker_backend,
    get_comm_backend,
    make_comm,
    set_comm_backend,
    use_comm_backend,
)
from repro.parallel.thread_comm import (
    ThreadComm,
    pool_thread_count,
    shutdown_pool,
)
from repro.parallel.process_comm import (
    ProcessComm,
    ProcessPoolError,
    ProcessWorkerError,
    WorkerCrashedError,
    WorkerTimeoutError,
    pool_process_count,
)
from repro.parallel.process_comm import shutdown_pool as shutdown_process_pool
from repro.parallel.chaos import (
    ChaosComm,
    FaultPlan,
    FaultRule,
    get_fault_plan,
    set_fault_plan,
    use_fault_plan,
)
from repro.parallel.machine import (
    IBM_SP2,
    MACHINES,
    SGI_ORIGIN,
    MachineModel,
    modeled_time,
    speedup,
    time_breakdown,
)

__all__ = [
    "RankStats",
    "CommStats",
    "Comm",
    "VirtualComm",
    "ThreadComm",
    "ProcessComm",
    "ChaosComm",
    "NestedCommError",
    "ProcessPoolError",
    "ProcessWorkerError",
    "WorkerCrashedError",
    "WorkerTimeoutError",
    "FaultPlan",
    "FaultRule",
    "set_fault_plan",
    "use_fault_plan",
    "get_fault_plan",
    "shutdown_pool",
    "shutdown_process_pool",
    "pool_thread_count",
    "pool_process_count",
    "current_worker_backend",
    "make_comm",
    "available_comm_backends",
    "get_comm_backend",
    "set_comm_backend",
    "use_comm_backend",
    "MachineModel",
    "IBM_SP2",
    "SGI_ORIGIN",
    "MACHINES",
    "modeled_time",
    "speedup",
    "time_breakdown",
]
