"""Simulated message-passing substrate.

The paper ran C + MPI on an IBM SP2 and an SGI Origin.  Here the same SPMD
algorithms execute rank-parallel inside one process: every collective the
MPI code would issue (nearest-neighbour interface exchange, halo
scatter/gather, allreduce) goes through :class:`VirtualComm`, which performs
the data movement *and* charges each rank's :class:`RankStats` with the
exact message counts, word volumes and flops.  :mod:`repro.parallel.machine`
then converts those counters into modeled wall-clock time on calibrated
SP2/Origin machine models, from which the speedup studies (Table 3,
Figs. 15-17) are regenerated.
"""

from repro.parallel.stats import CommStats, RankStats
from repro.parallel.comm import VirtualComm
from repro.parallel.machine import (
    IBM_SP2,
    MACHINES,
    SGI_ORIGIN,
    MachineModel,
    modeled_time,
    speedup,
    time_breakdown,
)

__all__ = [
    "RankStats",
    "CommStats",
    "VirtualComm",
    "MachineModel",
    "IBM_SP2",
    "SGI_ORIGIN",
    "MACHINES",
    "modeled_time",
    "speedup",
    "time_breakdown",
]
