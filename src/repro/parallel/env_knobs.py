"""Validated reads of the parallel-backend environment knobs.

The concurrent ``Comm`` backends are tuned through environment variables
(``REPRO_PROCESS_WORKERS``, ``REPRO_PROCESS_MIN_WORK``,
``REPRO_PROCESS_TIMEOUT``, ``REPRO_THREAD_WORKERS``,
``REPRO_THREAD_MIN_WORK``).  A malformed value used to surface as a raw
``ValueError`` from ``int()`` deep inside backend construction, with no
hint of *which* variable was wrong.  These helpers validate at read time
and raise one named error that echoes the variable name and the
offending value.
"""

from __future__ import annotations

import os

__all__ = ["EnvKnobError", "read_int_env", "read_float_env"]


class EnvKnobError(ValueError):
    """A ``REPRO_*`` environment knob holds an unparsable value.

    Subclasses :class:`ValueError` so legacy ``except ValueError`` guards
    keep working; the message names the variable and quotes the value so
    the misconfiguration is identifiable without a debugger.
    """

    def __init__(self, name: str, value: str, expected: str):
        self.name = name
        self.value = value
        super().__init__(
            f"invalid value for environment variable {name}: {value!r} "
            f"(expected {expected})"
        )


def read_int_env(name: str, default: int) -> int:
    """``int(os.environ[name])`` with a named error on malformed input.

    Unset or empty means ``default`` (matching the historical truthiness
    check on the worker-count knobs, where ``""`` falls through to the
    CPU-count default).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise EnvKnobError(name, raw, "an integer") from None


def read_float_env(name: str, default: float) -> float:
    """``float(os.environ[name])`` with a named error on malformed input."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        raise EnvKnobError(name, raw, "a number") from None
