"""Per-rank operation counters.

These counters are the simulation's ground truth: every kernel reports the
flops it performed and every collective reports the messages it moved, per
rank.  The machine models consume them; the Table 1 complexity tests assert
against them.

Thread-safety contract (the :class:`~repro.parallel.thread_comm.ThreadComm`
backend runs rank bodies concurrently):

* **Per-rank updates are disjoint** — rank ``r``'s body only ever touches
  ``stats.ranks[r]``, so plain ``+=`` on a single :class:`RankStats` from
  its own worker thread needs no lock.
* **Cross-rank updates** (reductions charge *every* rank, snapshots read
  all ranks at once) go through :meth:`CommStats.charge_all_ranks`, which
  holds the stats lock so a concurrent hammer of chargers and readers
  still yields exact totals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class RankStats:
    """Operation counts of a single rank.

    Attributes
    ----------
    flops:
        Floating-point operations executed.
    nbr_messages:
        Point-to-point messages *sent* to neighbouring ranks.
    nbr_words:
        Total 8-byte words sent in those messages.
    reductions:
        Global reduction operations participated in.
    reduction_words:
        Words contributed per rank across all reductions.
    """

    flops: int = 0
    nbr_messages: int = 0
    nbr_words: int = 0
    reductions: int = 0
    reduction_words: int = 0

    def merge(self, other: "RankStats") -> None:
        """Accumulate another counter set into this one."""
        self.flops += other.flops
        self.nbr_messages += other.nbr_messages
        self.nbr_words += other.nbr_words
        self.reductions += other.reductions
        self.reduction_words += other.reduction_words


@dataclass
class CommStats:
    """Counters for all ranks of a communicator.

    A single :class:`threading.Lock` guards every operation that spans
    ranks; per-rank increments from the owning rank's thread are lock-free
    by the disjointness contract documented in the module docstring.
    """

    n_ranks: int
    ranks: list = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.ranks:
            self.ranks = [RankStats() for _ in range(self.n_ranks)]
        if len(self.ranks) != self.n_ranks:
            raise ValueError("one RankStats per rank required")

    def charge_all_ranks(
        self,
        flops: int = 0,
        nbr_messages: int = 0,
        nbr_words: int = 0,
        reductions: int = 0,
        reduction_words: int = 0,
    ) -> None:
        """Atomically add the same increments to *every* rank.

        This is the collective-side charging path (allreduces and barriers
        hit all ranks symmetrically); holding the lock makes it safe to
        call concurrently with itself and with :meth:`snapshot`.
        """
        with self._lock:
            for r in self.ranks:
                r.flops += int(flops)
                r.nbr_messages += int(nbr_messages)
                r.nbr_words += int(nbr_words)
                r.reductions += int(reductions)
                r.reduction_words += int(reduction_words)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self.ranks = [RankStats() for _ in range(self.n_ranks)]

    def snapshot(self) -> "CommStats":
        """Deep copy of the current counters (atomic across ranks)."""
        copy = CommStats(self.n_ranks)
        with self._lock:
            for dst, src in zip(copy.ranks, self.ranks):
                dst.merge(src)
        return copy

    def delta(self, earlier: "CommStats") -> "CommStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        out = CommStats(self.n_ranks)
        for o, now, then in zip(out.ranks, self.ranks, earlier.ranks):
            o.flops = now.flops - then.flops
            o.nbr_messages = now.nbr_messages - then.nbr_messages
            o.nbr_words = now.nbr_words - then.nbr_words
            o.reductions = now.reductions - then.reductions
            o.reduction_words = now.reduction_words - then.reduction_words
        return out

    def to_dict(self) -> dict:
        """JSON-serializable totals plus per-rank counters (atomic)."""
        with self._lock:
            per_rank = [
                {
                    "flops": int(r.flops),
                    "nbr_messages": int(r.nbr_messages),
                    "nbr_words": int(r.nbr_words),
                    "reductions": int(r.reductions),
                    "reduction_words": int(r.reduction_words),
                }
                for r in self.ranks
            ]
        return {
            "n_ranks": self.n_ranks,
            "total_flops": sum(r["flops"] for r in per_rank),
            "max_flops": max((r["flops"] for r in per_rank), default=0),
            "total_nbr_messages": sum(r["nbr_messages"] for r in per_rank),
            "total_nbr_words": sum(r["nbr_words"] for r in per_rank),
            "max_reductions": max(
                (r["reductions"] for r in per_rank), default=0
            ),
            "per_rank": per_rank,
        }

    @property
    def total_flops(self) -> int:
        """Flops summed over ranks — the sequential work equivalent."""
        return sum(r.flops for r in self.ranks)

    @property
    def max_flops(self) -> int:
        """Flops of the busiest rank — the parallel critical path."""
        return max(r.flops for r in self.ranks)

    @property
    def total_nbr_messages(self) -> int:
        """Neighbour messages summed over ranks."""
        return sum(r.nbr_messages for r in self.ranks)

    @property
    def total_nbr_words(self) -> int:
        """Neighbour words summed over ranks."""
        return sum(r.nbr_words for r in self.ranks)

    @property
    def max_reductions(self) -> int:
        """Reductions seen by any rank (collectives hit all ranks equally)."""
        return max(r.reductions for r in self.ranks)
