"""Analytic machine models for the paper's two platforms.

The paper reports wall-clock seconds on an IBM SP2 and an SGI Origin.  Our
substrate executes the identical communication pattern in-process, so we
reconstruct time from first principles instead: each rank's flops divide by
a sustained flop rate, each point-to-point message costs latency plus
words/bandwidth, and each allreduce costs a log2(P) combining tree.  The
constants are calibrated to mid-1990s SP2 / Origin-class hardware: the SP2
is a distributed-memory machine with high MPI latency, the Origin a
shared-memory (ccNUMA) machine with much cheaper messaging — which is
exactly the contrast Fig. 17(e) attributes the SP2/Origin speedup gap to.

Modeled time is used for the *shape* of Table 3 and Figs. 15-17 (who wins,
how speedup scales with size/degree/machine); absolute seconds on a Python
substrate are meaningless and are not compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.parallel.stats import CommStats


@dataclass(frozen=True)
class MachineModel:
    """A linear (postal) performance model of a message-passing machine.

    Parameters
    ----------
    name:
        Display name.
    flop_rate:
        Sustained flop/s of one processor on sparse kernels.
    latency:
        Point-to-point message startup cost, seconds.
    bandwidth:
        Point-to-point bandwidth, bytes/second.
    reduce_latency:
        Per-hop cost of a combining-tree reduction, seconds.
    word_bytes:
        Bytes per transmitted word (float64 = 8).
    """

    name: str
    flop_rate: float
    latency: float
    bandwidth: float
    reduce_latency: float
    word_bytes: int = 8

    def msg_time(self, words: int) -> float:
        """Time of one point-to-point message carrying ``words`` words."""
        return self.latency + words * self.word_bytes / self.bandwidth

    def reduce_time(self, p: int, words: int = 1) -> float:
        """Time of one allreduce over ``p`` ranks."""
        if p <= 1:
            return 0.0
        hops = math.ceil(math.log2(p))
        return hops * (
            self.reduce_latency + words * self.word_bytes / self.bandwidth
        )


#: IBM SP2: distributed memory, high-latency MPI over the SP switch, and
#: expensive software global reductions.
IBM_SP2 = MachineModel(
    name="IBM SP2",
    flop_rate=110e6,
    latency=35e-6,
    bandwidth=40e6,
    reduce_latency=60e-6,
)

#: SGI Origin: ccNUMA shared memory — nearest-neighbour exchanges are cheap
#: cache-line traffic, while global reductions still synchronize the whole
#: machine (hence the relatively large reduce_latency).
SGI_ORIGIN = MachineModel(
    name="SGI Origin",
    flop_rate=140e6,
    latency=3e-6,
    bandwidth=200e6,
    reduce_latency=30e-6,
)

MACHINES = {"sp2": IBM_SP2, "origin": SGI_ORIGIN}


def modeled_time(stats: CommStats, machine: MachineModel) -> float:
    """Modeled parallel wall-clock time of the run recorded in ``stats``.

    Bulk-synchronous estimate: the busiest rank's compute time, plus the
    busiest rank's serialized point-to-point traffic, plus all reductions.
    """
    return time_breakdown(stats, machine)["total"]


def time_breakdown(stats: CommStats, machine: MachineModel) -> dict:
    """Split :func:`modeled_time` into its components.

    Returns ``{"compute", "p2p", "reduction", "total"}`` in seconds — the
    cost structure behind the speedup curves (e.g. higher polynomial
    degrees shift weight from reductions to compute + p2p).
    """
    p = stats.n_ranks
    compute = max(r.flops for r in stats.ranks) / machine.flop_rate
    p2p = max(
        r.nbr_messages * machine.latency
        + r.nbr_words * machine.word_bytes / machine.bandwidth
        for r in stats.ranks
    )
    n_red = max(r.reductions for r in stats.ranks)
    red_words = max(r.reduction_words for r in stats.ranks)
    avg_words = red_words / n_red if n_red else 0.0
    reduction = n_red * machine.reduce_time(p, max(1, round(avg_words)))
    return {
        "compute": compute,
        "p2p": p2p,
        "reduction": reduction,
        "total": compute + p2p + reduction,
    }


def speedup(
    sequential: CommStats, parallel: CommStats, machine: MachineModel
) -> float:
    """Modeled speedup ``T_1 / T_P`` between two recorded runs."""
    t1 = modeled_time(sequential, machine)
    tp = modeled_time(parallel, machine)
    if tp <= 0:
        raise ValueError("parallel run recorded no work")
    return t1 / tp
