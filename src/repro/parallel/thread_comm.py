"""Shared-memory concurrent communicator backend.

:class:`ThreadComm` executes the per-rank SPMD bodies the solvers hand to
:meth:`~repro.parallel.comm.Comm.run_ranks` on a **persistent pool of
worker threads**, the way FastIPC drives its per-block kernels: the pool is
created once, workers park on a condition variable between parallel
regions, and each ``run_ranks`` call is one fork-join region whose join is
a real barrier.  Rank ``r``'s body runs on worker ``r % n_workers``, so
with ``n_workers >= n_parts`` every subdomain gets its own thread.

True concurrency comes from the GIL-releasing kernel substrate of
:mod:`repro.sparse.kernels`: scipy's ``_sparsetools`` C loops and numpy's
ufunc inner loops drop the GIL, so on an N-core machine the P per-rank
matvecs of every Arnoldi step (and each of the ``m`` polynomial-
preconditioner matvecs inside it) overlap on real hardware.  Numerics are
bit-identical to :class:`~repro.parallel.comm.VirtualComm`: bodies touch
disjoint rank state, collectives (including the binary-tree allreduce) are
shared base-class code, and per-rank flop counters are disjoint by the
:mod:`repro.parallel.stats` contract.

Tuning environment variables (read at pool construction):

* ``REPRO_THREAD_WORKERS`` — worker count cap (default: CPU count, but at
  least 2 so concurrency paths are exercised on single-core CI runners).
* ``REPRO_THREAD_MIN_WORK`` — minimum estimated scalar-op count below
  which a region runs inline instead of fanning out (default 8192);
  results are identical either way, this only avoids paying dispatch
  latency on tiny vectors.
"""

from __future__ import annotations

import os
import threading
import weakref

from repro.obs.tracer import timed_rank_body
from repro.parallel.comm import _WORKER_CTX, Comm, guard_nested_comm
from repro.parallel.env_knobs import read_int_env
from repro.partition.interface import SubdomainMap

_DEFAULT_MIN_WORK = 8192


def _default_workers() -> int:
    """Worker cap from ``REPRO_THREAD_WORKERS`` or the CPU count (min 2)."""
    env = os.environ.get("REPRO_THREAD_WORKERS")
    if env and env.strip():
        return max(1, read_int_env("REPRO_THREAD_WORKERS", 1))
    return max(2, os.cpu_count() or 1)


class _WorkerPool:
    """A persistent fork-join pool: broadcast a body, strided rank loop,
    join-as-barrier.

    ``run(body, n_ranks)`` wakes every worker; worker ``w`` executes
    ``body(r)`` for ranks ``w, w + n, w + 2n, ...`` and the caller blocks
    until all workers finish (the join is the region's barrier).  One
    condition variable carries both the wake-up broadcast and the
    completion count, keeping per-region overhead to two lock handoffs.
    """

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        # Serializes whole fork-join regions: two communicators sharing
        # the pool take turns instead of interleaving broadcast state.
        self._run_lock = threading.Lock()
        self._cv = threading.Condition()
        self._generation = 0
        self._body = None
        self._n_ranks = 0
        self._pending = 0
        self._errors: list = []
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(w,),
                name=f"repro-comm-{w}",
                daemon=True,
            )
            for w in range(n_workers)
        ]
        for t in self._threads:
            t.start()

    def _worker_loop(self, w: int) -> None:
        """Park on the condition variable; run strided ranks when woken."""
        seen = 0
        while True:
            with self._cv:
                while self._generation == seen and not self._closed:
                    self._cv.wait()
                if self._closed:
                    return
                seen = self._generation
                body, n_ranks = self._body, self._n_ranks
            try:
                for r in range(w, n_ranks, self.n_workers):
                    body(r)
            except BaseException as exc:  # propagate to the orchestrator
                with self._cv:
                    self._errors.append(exc)
            finally:
                with self._cv:
                    self._pending -= 1
                    if self._pending == 0:
                        self._cv.notify_all()

    def run(self, body, n_ranks: int) -> None:
        """Execute one parallel region and wait for its barrier."""
        with self._run_lock:
            with self._cv:
                if self._closed:
                    raise RuntimeError("worker pool is closed")
                self._body = body
                self._n_ranks = n_ranks
                self._pending = self.n_workers
                self._errors = []
                self._generation += 1
                self._cv.notify_all()
                while self._pending:
                    self._cv.wait()
                self._body = None
                if self._errors:
                    raise self._errors[0]

    def close(self) -> None:
        """Wake and terminate all workers; idempotent."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)


# One shared pool per process, grown on demand; ThreadComm instances are
# cheap because they only borrow it.  Guarded by a lock so concurrent
# communicators serialize their parallel regions instead of interleaving
# bodies from different solves on the same workers.  Live communicators
# are tracked in a WeakSet so the pool can be drained — by
# :func:`shutdown_pool`, called on ``use_comm_backend`` exit and by
# ``ThreadComm.close()`` — once nobody borrows it anymore.
_pool_lock = threading.Lock()
_shared_pool: list = [None]
#: The worker marker is shared registry state (repro.parallel.comm), so
#: every pooled backend recognizes workers of every other backend — the
#: nested-comm guard and the inline fallback both key off it.
_in_worker = _WORKER_CTX
_live_comms: "weakref.WeakSet" = weakref.WeakSet()


def _acquire_pool(n_workers: int) -> _WorkerPool:
    """The process-wide pool, recreated larger when a caller needs it."""
    with _pool_lock:
        pool = _shared_pool[0]
        if pool is None or pool.n_workers < n_workers:
            if pool is not None:
                pool.close()
            pool = _WorkerPool(n_workers)
            _shared_pool[0] = pool
        return pool


def shutdown_pool(force: bool = False) -> bool:
    """Drain the shared worker pool (join all threads); idempotent.

    Without ``force``, the pool survives while any live (unclosed)
    :class:`ThreadComm` still borrows it — callers that did close their
    communicators (e.g. :func:`repro.core.driver.solve_cantilever`, or
    the ``use_comm_backend`` context manager on exit) get a clean
    no-leaked-threads guarantee.  Returns True when the pool was torn
    down; a later ``run_ranks`` transparently recreates it.
    """
    with _pool_lock:
        if not force and len(_live_comms):
            return False
        pool = _shared_pool[0]
        if pool is None:
            return True
        _shared_pool[0] = None
    pool.close()
    return True


def pool_thread_count() -> int:
    """Worker threads currently alive in the shared pool (0 = drained);
    the observability hook the lifecycle tests assert against."""
    with _pool_lock:
        pool = _shared_pool[0]
        if pool is None:
            return 0
        return sum(t.is_alive() for t in pool._threads)


class ThreadComm(Comm):
    """Concurrent shared-memory backend (``"thread"``).

    Parameters
    ----------
    submap:
        DOF sharing structure (same as :class:`VirtualComm`).
    trace:
        Record per-message tuples in :attr:`message_log`.
    n_workers:
        Worker-thread cap; defaults to ``REPRO_THREAD_WORKERS`` or the
        CPU count.  Ranks beyond the cap are strided over the workers.
    min_parallel_work:
        Estimated scalar-op threshold below which ``run_ranks`` executes
        inline (identical results, no dispatch latency); defaults to
        ``REPRO_THREAD_MIN_WORK`` or 8192.
    """

    backend_name = "thread"

    def __init__(
        self,
        submap: SubdomainMap,
        trace: bool = False,
        n_workers: int | None = None,
        min_parallel_work: int | None = None,
    ):
        guard_nested_comm("thread")
        super().__init__(submap, trace=trace)
        if n_workers is None:
            n_workers = _default_workers()
        self.n_workers = max(1, min(int(n_workers), self.size))
        if min_parallel_work is None:
            min_parallel_work = read_int_env(
                "REPRO_THREAD_MIN_WORK", _DEFAULT_MIN_WORK
            )
        self.min_parallel_work = min_parallel_work
        _live_comms.add(self)

    def run_ranks(self, body, work: int | None = None) -> list:
        """Dispatch ``body(rank)`` across the persistent worker pool.

        Collects per-rank return values exactly like the serial backend.
        Falls back to inline execution when the communicator is single
        rank, the estimated ``work`` is below the parallel threshold, or
        the caller is itself a pool worker (nested regions would
        deadlock); results are identical on every path.
        """
        if self.tracer.enabled:
            # Per-rank slots are disjoint, so the timing wrapper is safe
            # on both the inline and the pooled path without locking.
            body = timed_rank_body(self.tracer, body)
        if (
            self.size == 1
            or self.n_workers == 1
            or getattr(_in_worker, "backend", None) is not None
            or (work is not None and work < self.min_parallel_work)
        ):
            return [body(r) for r in range(self.size)]
        results = [None] * self.size

        def wrapped(r: int) -> None:
            _in_worker.backend = "thread"
            try:
                results[r] = body(r)
            finally:
                _in_worker.backend = None

        _acquire_pool(self.n_workers).run(wrapped, self.size)
        return results

    def barrier(self) -> None:
        """A real cross-thread barrier: every worker must arrive before
        any leaves.  (Each ``run_ranks`` join is already a barrier; this
        exposes the primitive directly for SPMD-style callers.)"""
        if self.n_workers == 1 or getattr(_in_worker, "backend", None) is not None:
            return
        gate = threading.Barrier(self.n_workers)

        def wait(_r: int) -> None:
            gate.wait()

        _acquire_pool(self.n_workers).run(wait, self.n_workers)

    def close(self) -> None:
        """Release this communicator's borrow of the shared pool and
        drain the pool if it was the last borrower; idempotent.  A later
        ``run_ranks`` (from a new communicator) recreates the pool, so
        closing costs only thread re-spawn on the next parallel solve."""
        _live_comms.discard(self)
        shutdown_pool()
