"""Element-based domain-decomposition FGMRES (Algorithms 5 and 6).

Both variants run the same numerics — restarted flexible GMRES with a
polynomial preconditioner applied through the communicating matvec — and
differ only in communication structure, exactly as in the paper:

* ``variant="basic"`` (Algorithm 5) keeps the Krylov basis in local
  distributed format and re-assembles at every use: **3** nearest-neighbour
  exchanges per Arnoldi step outside the preconditioner.
* ``variant="enhanced"`` (Algorithm 6) carries each basis vector in both
  formats and keeps the preconditioned vectors global-distributed: **1**
  exchange per Arnoldi step outside the preconditioner.

A degree-``m`` polynomial preconditioner adds ``m`` matvec+exchange pairs
per step in either variant, giving the Table 1 totals ``m+3`` vs ``m+1``.
The mixed-format inner product (Eq. 33) makes every Gram-Schmidt projection
a single allreduce with no neighbour traffic.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed import DistVector, EDDSystem
from repro.precond.base import PolynomialPreconditioner
from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult


def _precondition(system: EDDSystem, precond, v_hat: DistVector) -> DistVector:
    """Apply the polynomial preconditioner through the communicating
    operator: ``m`` matvecs, each followed by one interface assembly
    (the distributed Algorithm 7)."""
    if precond is None:
        return v_hat.copy()
    if not isinstance(precond, PolynomialPreconditioner):
        raise TypeError(
            "EDD-FGMRES requires a polynomial preconditioner (or None): "
            "factorization preconditioners cannot be applied to unassembled "
            "local-distributed matrices"
        )
    return precond.apply_linear(system.matvec_assembled, v_hat)


def edd_fgmres(
    system: EDDSystem,
    precond=None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    variant: str = "enhanced",
    breakdown_tol: float = 1e-14,
    orthogonalization: str = "cgs",
    options=None,
) -> SolveResult:
    """Solve the scaled EDD system; returns the *unscaled* global solution.

    Parameters mirror :func:`repro.solvers.fgmres`; ``variant`` selects
    Algorithm 5 (``"basic"``) or Algorithm 6 (``"enhanced"``);
    ``orthogonalization`` selects classical (``"cgs"``, the paper's choice:
    one batched allreduce per step) or modified (``"mgs"``: j+1 sequential
    allreduces per step) Gram-Schmidt.  All communication flows through
    ``system.comm`` and is recorded in its counters.

    ``options`` — a :class:`repro.core.options.SolverOptions` — is the
    unified configuration surface shared with :func:`rdd_fgmres` and the
    driver: when given, it supplies ``restart``/``tol``/``max_iter``/
    ``orthogonalization``, the variant (from ``options.method``) and, if
    ``precond`` is None, the preconditioner parsed from
    ``options.precond``.
    """
    if options is not None:
        restart = options.restart
        tol = options.tol
        max_iter = options.max_iter
        orthogonalization = options.orthogonalization
        if options.method in ("edd-basic", "edd-enhanced"):
            variant = options.method[len("edd-"):]
        if precond is None:
            from repro.precond.spec import make_preconditioner

            precond = make_preconditioner(options.precond)
    if variant not in ("basic", "enhanced"):
        raise ValueError("variant must be 'basic' or 'enhanced'")
    if orthogonalization not in ("cgs", "mgs"):
        raise ValueError("orthogonalization must be 'cgs' or 'mgs'")
    if restart < 1:
        raise ValueError("restart must be >= 1")
    basic = variant == "basic"

    b_loc = DistVector([p.copy() for p in system.b_local], "local", system.comm)
    x_hat = system.zeros("global")

    # Initial residual; x0 = 0 so r = b (kept general for restarts below).
    r_loc = b_loc - system.matvec_local(x_hat)
    r_hat = system.assemble(r_loc)
    norm_b0 = np.sqrt(max(system.dot(r_loc, r_hat), 0.0))
    history = [1.0]
    if norm_b0 == 0.0:
        return SolveResult(np.zeros(system.n_global), True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_b0, 0, "initial residual"):
        return SolveResult(
            np.zeros(system.n_global), False, 0, 0, history,
            monitor.finalize(False, 0, 1.0),
        )

    total_iters = 0
    restarts = 0
    converged = False
    beta = norm_b0
    # Reusable CGS coefficient workspace (rank-partials per basis vector);
    # sized once for the whole solve instead of per Arnoldi step.
    partial_buf = np.empty((restart, system.n_parts))
    while not converged and total_iters < max_iter and not monitor.fatal:
        restarts += 1
        v_loc = [(1.0 / beta) * r_loc]
        v_hat = [(1.0 / beta) * r_hat]
        z_hat: list = []
        lsq = GivensLSQ(restart, beta)
        broke_down = False
        j = 0
        while j < restart and total_iters < max_iter:
            z = _precondition(system, precond, v_hat[j])
            if basic:
                # Exchange 1 of 3: Algorithm 5's statement 14 re-assembles
                # the preconditioned vector (Algorithm 6 keeps it in global
                # distributed format and skips this).
                z = system.assemble(system.localize(z))
            z_hat.append(z)
            w_loc = system.matvec_local(z)
            w_hat = system.assemble(w_loc)  # the enhanced variant's only exchange

            h = np.empty(j + 2)
            if orthogonalization == "cgs":
                # Classical Gram-Schmidt (the paper's listings): all
                # coefficients from the unmodified w via the mixed-format
                # inner product, batched into ONE allreduce of j+1 words
                # (Eq. 33).  Both rank loops — the j+1 partial dots and
                # the j+1 AXPY pairs — are fused into single per-rank
                # bodies so the backend dispatches each region once per
                # step instead of once per basis vector.
                comm = system.comm
                partial = partial_buf[: j + 1]
                n_local = sum(len(p) for p in w_hat.parts)

                def dots_body(r: int) -> None:
                    wr = w_hat.parts[r]
                    for i in range(j + 1):
                        partial[i, r] = v_loc[i].parts[r] @ wr
                    comm.add_flops(r, 2 * (j + 1) * len(wr))

                comm.run_ranks(dots_body, work=2 * (j + 1) * n_local)
                h[: j + 1] = comm.allreduce_sum(list(partial.T), words=j + 1)

                new_loc: list = [None] * system.n_parts
                new_hat: list = [None] * system.n_parts

                def ortho_body(r: int) -> None:
                    wl = w_loc.parts[r]
                    wh = w_hat.parts[r]
                    for i in range(j + 1):
                        hi = h[i]
                        wl = wl - hi * v_loc[i].parts[r]
                        wh = wh - hi * v_hat[i].parts[r]
                    new_loc[r] = wl
                    new_hat[r] = wh
                    comm.add_flops(r, 4 * (j + 1) * len(wl))

                comm.run_ranks(ortho_body, work=4 * (j + 1) * n_local)
                w_loc = DistVector(new_loc, "local", comm)
                w_hat = DistVector(new_hat, "global", comm)
            else:
                # Modified Gram-Schmidt: numerically sturdier, but each
                # projection needs the *updated* w — j+1 sequential
                # allreduces per step, the communication cost that makes
                # parallel GMRES implementations prefer CGS.
                for i in range(j + 1):
                    h[i] = system.dot(v_loc[i], w_hat)
                    w_loc = w_loc - h[i] * v_loc[i]
                    w_hat = w_hat - h[i] * v_hat[i]
            if basic:
                # Exchange 3 of 3: restore format consistency by
                # re-assembling the orthogonalized vector.
                w_hat = system.assemble(system.localize(w_hat))
            norm_sq = system.dot(w_loc, w_hat)
            h[j + 1] = np.sqrt(max(norm_sq, 0.0))
            if not monitor.check_finite(h, total_iters + 1, "Hessenberg column"):
                break
            res = lsq.append_column(h)
            total_iters += 1
            history.append(res / norm_b0)
            if not monitor.check_divergence(res / norm_b0, total_iters):
                break
            if res / norm_b0 <= tol:
                converged = True
                j += 1
                break
            if h[j + 1] <= breakdown_tol:
                # Possible happy breakdown — the recomputed true residual
                # at the restart boundary decides; a corrupted breakdown
                # restarts instead of returning converged.
                monitor.note_breakdown(float(h[j + 1]), total_iters)
                broke_down = True
                j += 1
                break
            v_loc.append((1.0 / h[j + 1]) * w_loc)
            v_hat.append((1.0 / h[j + 1]) * w_hat)
            j += 1
        y = lsq.solve()
        for i, yi in enumerate(y):
            x_hat = x_hat + float(yi) * z_hat[i]
        r_loc = b_loc - system.matvec_local(x_hat)
        r_hat = system.assemble(r_loc)
        beta = np.sqrt(max(system.dot(r_loc, r_hat), 0.0))
        if not monitor.check_finite(beta, total_iters, "recomputed residual"):
            break
        true_rel = beta / norm_b0
        if true_rel <= tol:
            converged = True
        elif converged:
            # The Givens recurrence claimed convergence; verify against
            # the recomputed true residual (the "recurrence residual
            # lies" failure) and demote on gross mismatch.
            converged = monitor.confirm_convergence(true_rel, total_iters)
        elif broke_down:
            monitor.confirm_breakdown(true_rel, total_iters)
        if not converged:
            monitor.cycle_end(true_rel, total_iters)

    # Unscale on the way out (Algorithm 4, step 5): u = D x.
    u_hat = DistVector(
        [d * p for d, p in zip(system.d_parts, x_hat.parts)],
        "global",
        system.comm,
    )
    u = system.to_global_vector(u_hat)
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        u,
        converged,
        total_iters,
        restarts,
        history,
        monitor.finalize(converged, total_iters, final_rel),
    )
