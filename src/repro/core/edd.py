"""Element-based domain-decomposition FGMRES (Algorithms 5 and 6).

Both variants run the same numerics — restarted flexible GMRES with a
polynomial preconditioner applied through the communicating matvec — and
differ only in communication structure, exactly as in the paper:

* ``variant="basic"`` (Algorithm 5) keeps the Krylov basis in local
  distributed format and re-assembles at every use: **3** nearest-neighbour
  exchanges per Arnoldi step outside the preconditioner.
* ``variant="enhanced"`` (Algorithm 6) carries each basis vector in both
  formats and keeps the preconditioned vectors global-distributed: **1**
  exchange per Arnoldi step outside the preconditioner.

A degree-``m`` polynomial preconditioner adds ``m`` matvec+exchange pairs
per step in either variant, giving the Table 1 totals ``m+3`` vs ``m+1``.
The mixed-format inner product (Eq. 33) makes every Gram-Schmidt projection
a single allreduce with no neighbour traffic.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed import DistBlock, DistVector, EDDSystem
from repro.obs.tracer import NULL_TRACER
from repro.precond.base import PolynomialPreconditioner
from repro.precond.coarse import TwoLevelPreconditioner, TwoLevelSpec
from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult


def _resolve_precond(system, options):
    """Parse ``options.precond`` and bind system-dependent markers (the
    two-level composite) to the built system."""
    from repro.precond.spec import make_preconditioner

    precond = make_preconditioner(options.precond)
    if isinstance(precond, TwoLevelSpec):
        precond = TwoLevelPreconditioner.build(system, precond)
    return precond


def _precondition(system: EDDSystem, precond, v_hat: DistVector) -> DistVector:
    """Apply the polynomial preconditioner through the communicating
    operator: ``m`` matvecs, each followed by one interface assembly
    (the distributed Algorithm 7); a two-level preconditioner adds its
    coarse correction around the same recurrence."""
    if precond is None:
        return v_hat.copy()
    if isinstance(precond, TwoLevelPreconditioner):
        return precond.apply_edd(system, v_hat)
    if not isinstance(precond, PolynomialPreconditioner):
        raise TypeError(
            "EDD-FGMRES requires a polynomial or two-level preconditioner "
            "(or None): factorization preconditioners cannot be applied to "
            "unassembled local-distributed matrices"
        )
    engine = system.rank_engine()
    if engine.resident:
        terms = precond.chain_terms()
        if terms is not None:
            # Fused resident path: the whole degree-m matvec/recurrence
            # chain in ONE dispatch, bit-identical output and CommStats.
            out = engine.poly_chain(precond, terms, v_hat)
            if out is not None:
                return out
    return precond.apply_linear(system.matvec_assembled, v_hat)


def _precondition_block(system: EDDSystem, precond, v_hat: DistBlock) -> DistBlock:
    """Batched preconditioner application: the same ``m``-term recurrence
    over an ``(n, k)`` block, each matvec one SpMM + ONE batched interface
    assembly for all ``k`` columns."""
    if precond is None:
        return v_hat.copy()
    if isinstance(precond, TwoLevelPreconditioner):
        return precond.apply_edd_block(system, v_hat)
    if not isinstance(precond, PolynomialPreconditioner):
        raise TypeError(
            "EDD-FGMRES requires a polynomial or two-level preconditioner "
            "(or None): factorization preconditioners cannot be applied to "
            "unassembled local-distributed matrices"
        )
    return precond.apply_linear(system.matvec_assembled_block, v_hat)


def _sub_scaled_block(w: DistBlock, v: DistBlock, scales) -> DistBlock:
    """``w - v * diag(scales)`` (per-column AXPY), charging the same two
    flops per element as the single-vector ``w - h_i * v`` expression."""
    comm = w.comm
    a, b = w.parts, v.parts
    out = [None] * len(a)

    def body(r: int) -> None:
        out[r] = a[r] - b[r] * scales
        comm.add_flops(r, 2 * a[r].size)

    comm.run_ranks(body, work=2 * sum(p.size for p in a))
    return DistBlock(out, w.kind, comm)


def edd_fgmres(
    system: EDDSystem,
    precond=None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    variant: str = "enhanced",
    breakdown_tol: float = 1e-14,
    orthogonalization: str = "cgs",
    options=None,
    tracer=None,
) -> SolveResult:
    """Solve the scaled EDD system; returns the *unscaled* global solution.

    Parameters mirror :func:`repro.solvers.fgmres`; ``variant`` selects
    Algorithm 5 (``"basic"``) or Algorithm 6 (``"enhanced"``);
    ``orthogonalization`` selects classical (``"cgs"``, the paper's choice:
    one batched allreduce per step) or modified (``"mgs"``: j+1 sequential
    allreduces per step) Gram-Schmidt.  All communication flows through
    ``system.comm`` and is recorded in its counters.

    ``options`` — a :class:`repro.core.options.SolverOptions` — is the
    unified configuration surface shared with :func:`rdd_fgmres` and the
    driver: when given, it supplies ``restart``/``tol``/``max_iter``/
    ``orthogonalization``, the variant (from ``options.method``) and, if
    ``precond`` is None, the preconditioner parsed from
    ``options.precond``.

    ``tracer`` — a :class:`repro.obs.Tracer` — records per-cycle /
    per-Arnoldi-step spans, a per-iteration metrics stream with
    CommStats deltas, and (via ``system.comm``) the exchange spans the
    claim-3 invariant counts.  ``None`` (the default) costs one hoisted
    bool check per instrumentation site.
    """
    if options is not None:
        restart = options.restart
        tol = options.tol
        max_iter = options.max_iter
        orthogonalization = options.orthogonalization
        if options.method in ("edd-basic", "edd-enhanced"):
            variant = options.method[len("edd-"):]
        if precond is None:
            precond = _resolve_precond(system, options)
    if variant not in ("basic", "enhanced"):
        raise ValueError("variant must be 'basic' or 'enhanced'")
    if orthogonalization not in ("cgs", "mgs"):
        raise ValueError("orthogonalization must be 'cgs' or 'mgs'")
    if restart < 1:
        raise ValueError("restart must be >= 1")
    basic = variant == "basic"

    b_loc = DistVector([p.copy() for p in system.b_local], "local", system.comm)
    x_hat = system.zeros("global")
    engine = system.rank_engine()
    cgs = orthogonalization == "cgs"

    # Initial residual; x0 = 0 so r = b (kept general for restarts below).
    r_loc = b_loc - system.matvec_local(x_hat)
    r_hat = system.assemble(r_loc)
    norm_b0 = np.sqrt(max(system.dot(r_loc, r_hat), 0.0))
    history = [1.0]
    if norm_b0 == 0.0:
        return SolveResult(np.zeros(system.n_global), True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_b0, 0, "initial residual"):
        return SolveResult(
            np.zeros(system.n_global), False, 0, 0, history,
            monitor.finalize(False, 0, 1.0),
        )

    total_iters = 0
    restarts = 0
    converged = False
    beta = norm_b0
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    if traced:
        stats = system.comm.stats
        last_msgs = stats.total_nbr_messages
        last_words = stats.total_nbr_words
        last_reds = stats.max_reductions
    # Reusable CGS coefficient workspace (rank-partials per basis vector);
    # sized once for the whole solve instead of per Arnoldi step.
    partial_buf = np.empty((restart, system.n_parts))
    while not converged and total_iters < max_iter and not monitor.fatal:
        restarts += 1
        if traced:
            trc.begin("cycle", "solver", cycle=restarts)
        v_loc = [(1.0 / beta) * r_loc]
        v_hat = [(1.0 / beta) * r_hat]
        if cgs:
            engine.seed_basis(v_loc[0], v_hat[0])
        z_hat: list = []
        lsq = GivensLSQ(restart, beta)
        broke_down = False
        j = 0
        while j < restart and total_iters < max_iter:
            if traced:
                trc.begin("arnoldi_step", "solver", j=j)
                trc.begin("precond_apply", "solver")
            z = _precondition(system, precond, v_hat[j])
            if traced:
                trc.end()
            if basic:
                # Exchange 1 of 3: Algorithm 5's statement 14 re-assembles
                # the preconditioned vector (Algorithm 6 keeps it in global
                # distributed format and skips this).
                z = system.assemble(system.localize(z))
            z_hat.append(z)
            if traced:
                trc.begin("matvec", "solver")
            w_loc = system.matvec_local(z, cache=j)
            if traced:
                trc.end()
            w_hat = system.assemble(w_loc)  # the enhanced variant's only exchange

            h = np.empty(j + 2)
            if traced:
                trc.begin("orthogonalize", "solver")
            if cgs:
                # Classical Gram-Schmidt (the paper's listings): all
                # coefficients from the unmodified w via the mixed-format
                # inner product, batched into ONE allreduce of j+1 words
                # (Eq. 33).  The engine fuses the whole coefficient round
                # — partial dots, reduction, AXPY pairs — into a single
                # step (one worker dispatch in resident mode).
                w_loc, w_hat = engine.arnoldi_step(
                    j, h, v_loc, v_hat, w_loc, w_hat, partial_buf
                )
            else:
                # Modified Gram-Schmidt: numerically sturdier, but each
                # projection needs the *updated* w — j+1 sequential
                # allreduces per step, the communication cost that makes
                # parallel GMRES implementations prefer CGS.
                for i in range(j + 1):
                    h[i] = system.dot(v_loc[i], w_hat)
                    w_loc = w_loc - h[i] * v_loc[i]
                    w_hat = w_hat - h[i] * v_hat[i]
            if basic:
                # Exchange 3 of 3: restore format consistency by
                # re-assembling the orthogonalized vector.
                w_hat = system.assemble(system.localize(w_hat))
            norm_sq = system.dot(w_loc, w_hat)
            h[j + 1] = np.sqrt(max(norm_sq, 0.0))
            if traced:
                trc.end()  # orthogonalize
            if not monitor.check_finite(h, total_iters + 1, "Hessenberg column"):
                if traced:
                    trc.end()  # arnoldi_step
                break
            if traced:
                trc.begin("givens_update", "solver")
            res = lsq.append_column(h)
            if traced:
                trc.end()
            total_iters += 1
            history.append(res / norm_b0)
            if traced:
                m_now = stats.total_nbr_messages
                w_now = stats.total_nbr_words
                r_now = stats.max_reductions
                trc.metric(
                    iteration=total_iters, rel_res=res / norm_b0,
                    nbr_messages=m_now - last_msgs,
                    nbr_words=w_now - last_words,
                    reductions=r_now - last_reds,
                )
                last_msgs, last_words, last_reds = m_now, w_now, r_now
            if not monitor.check_divergence(res / norm_b0, total_iters):
                if traced:
                    trc.end()
                break
            if res / norm_b0 <= tol:
                converged = True
                j += 1
                if traced:
                    trc.end()
                break
            if h[j + 1] <= breakdown_tol:
                # Possible happy breakdown — the recomputed true residual
                # at the restart boundary decides; a corrupted breakdown
                # restarts instead of returning converged.
                monitor.note_breakdown(float(h[j + 1]), total_iters)
                broke_down = True
                j += 1
                if traced:
                    trc.end()
                break
            v_loc.append((1.0 / h[j + 1]) * w_loc)
            v_hat.append((1.0 / h[j + 1]) * w_hat)
            if cgs:
                # Workers mirror the append from their post-ortho slots;
                # the basic variant overrides the hat part with the
                # re-assembled vector computed above.
                engine.commit_basis(
                    1.0 / h[j + 1], hat_parts=w_hat.parts if basic else None
                )
            j += 1
            if traced:
                trc.end()  # arnoldi_step
        y = lsq.solve()
        x_hat = engine.axpy_update(x_hat, y, z_hat)
        r_loc = b_loc - system.matvec_local(x_hat)
        r_hat = system.assemble(r_loc)
        beta = np.sqrt(max(system.dot(r_loc, r_hat), 0.0))
        if not monitor.check_finite(beta, total_iters, "recomputed residual"):
            if traced:
                trc.end()  # cycle
            break
        true_rel = beta / norm_b0
        if traced:
            trc.metric(iteration=total_iters, true_rel=true_rel,
                       cycle=restarts)
        if true_rel <= tol:
            converged = True
        elif converged:
            # The Givens recurrence claimed convergence; verify against
            # the recomputed true residual (the "recurrence residual
            # lies" failure) and demote on gross mismatch.
            converged = monitor.confirm_convergence(true_rel, total_iters)
        elif broke_down:
            monitor.confirm_breakdown(true_rel, total_iters)
        if not converged:
            monitor.cycle_end(true_rel, total_iters)
        if traced:
            trc.end(true_rel=true_rel)  # cycle

    # Unscale on the way out (Algorithm 4, step 5): u = D x.
    u_hat = DistVector(
        [d * p for d, p in zip(system.d_parts, x_hat.parts)],
        "global",
        system.comm,
    )
    u = system.to_global_vector(u_hat)
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        u,
        converged,
        total_iters,
        restarts,
        history,
        monitor.finalize(converged, total_iters, final_rel),
    )


def edd_fgmres_block(
    system: EDDSystem,
    b,
    precond=None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    variant: str = "enhanced",
    breakdown_tol: float = 1e-14,
    orthogonalization: str = "cgs",
    options=None,
    tracer=None,
) -> list:
    """Batched multi-RHS EDD-FGMRES: solve the scaled system for all ``k``
    columns of ``b`` simultaneously; returns one :class:`SolveResult` per
    column (unscaled global solutions).

    ``b`` is an ``(n_free, k)`` array of raw right-hand sides (reduced,
    unscaled — what the driver feeds the system builder) or an equivalent
    local-distributed :class:`DistBlock`.

    Numerics are column-exact with the single-RHS solver: every kernel in
    the loop (SpMM, batched assembly, per-column ddots, broadcast AXPYs)
    applies per-column exactly the floating-point operations
    :func:`edd_fgmres` applies, so for ``k == 1`` the residual history is
    bit-identical, and each column of a ``k > 1`` solve follows its own
    single-RHS trajectory (identical up to BLAS stride effects, which the
    per-column kernels avoid by construction — so it is also exact).

    Communication is coalesced: one Arnoldi step costs ONE nearest-
    neighbour exchange and ONE allreduce for all ``k`` columns (message
    count as a single-RHS step, payload words scaled by ``k``).

    Convergence is masked per column: when a column converges, breaks
    down, diverges, or hits ``max_iter``, its solution update is applied
    and it is compacted out of the Krylov blocks, so finished columns stop
    charging flops and words.  Columns whose claimed convergence fails the
    recomputed true-residual check rejoin the next restart cycle, exactly
    as the single-RHS monitor flow would.
    """
    if options is not None:
        restart = options.restart
        tol = options.tol
        max_iter = options.max_iter
        orthogonalization = options.orthogonalization
        if options.method in ("edd-basic", "edd-enhanced"):
            variant = options.method[len("edd-"):]
        if precond is None:
            precond = _resolve_precond(system, options)
    if variant not in ("basic", "enhanced"):
        raise ValueError("variant must be 'basic' or 'enhanced'")
    if orthogonalization not in ("cgs", "mgs"):
        raise ValueError("orthogonalization must be 'cgs' or 'mgs'")
    if restart < 1:
        raise ValueError("restart must be >= 1")
    basic = variant == "basic"
    comm = system.comm
    n_parts = system.n_parts

    if isinstance(b, DistBlock):
        if b.kind != "local":
            raise ValueError("RHS block must be local-distributed")
        b_blk = b
    else:
        b_blk = system.rhs_block(b)
    k = b_blk.k
    if k == 0:
        return []
    n_rows = sum(p.shape[0] for p in b_blk.parts)

    x_hat = system.zeros_block(k, "global")
    r_loc = b_blk - system.matvec_local_block(x_hat)
    r_hat = system.assemble_block(r_loc)
    norm_b0 = np.sqrt(np.maximum(system.dot_block(r_loc, r_hat), 0.0))

    histories = [[1.0] for _ in range(k)]
    monitors = [ConvergenceMonitor(tol) for _ in range(k)]
    iters = [0] * k
    n_restarts = [0] * k
    converged = [False] * k
    zero_col = [False] * k
    bad_init = [False] * k
    active: list = []
    for c in range(k):
        if norm_b0[c] == 0.0:
            zero_col[c] = True
            converged[c] = True
        elif not monitors[c].check_finite(
            float(norm_b0[c]), 0, "initial residual"
        ):
            bad_init[c] = True
        else:
            active.append(c)

    # Residual block state carried between cycles: columns ``r_cols`` of
    # (r_loc, r_hat) with per-column norms ``beta_arr``.
    r_cols = list(range(k))
    beta_arr = norm_b0
    # Reusable CGS coefficient workspace (basis vector x rank x column).
    partial_buf = np.empty((restart, n_parts, k))
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    cycle_no = 0

    while active:
        cycle_no += 1
        if traced:
            trc.begin("cycle", "solver", cycle=cycle_no, k=len(active))
        participants = list(active)
        sel = [r_cols.index(c) for c in participants]
        if sel != list(range(len(r_cols))):
            rl = r_loc.take_cols(sel)
            rh = r_hat.take_cols(sel)
            betas = beta_arr[np.asarray(sel)]
        else:
            rl, rh = r_loc, r_hat
            betas = beta_arr
        for c in participants:
            n_restarts[c] += 1
        inv_beta = 1.0 / betas
        v_loc = [rl.scale_cols(inv_beta)]
        v_hat = [rh.scale_cols(inv_beta)]
        z_blk: list = []
        lsqs = {c: GivensLSQ(restart, float(betas[i]))
                for i, c in enumerate(participants)}
        claimed = {c: False for c in participants}
        broke = {c: False for c in participants}
        cols = list(participants)

        def exit_column(pos: int) -> None:
            """Apply column ``pos``'s solution update and compact it out of
            every live Krylov block (per-column convergence masking)."""
            c = cols[pos]
            y = lsqs[c].solve()
            if len(y):

                def body(r: int) -> None:
                    xr = x_hat.parts[r]
                    for i, yi in enumerate(y):
                        xr[:, c] = xr[:, c] + float(yi) * z_blk[i].parts[r][:, pos]
                    comm.add_flops(r, 2 * len(y) * xr.shape[0])

                comm.run_ranks(body, work=2 * len(y) * n_rows)
            for i in range(len(v_loc)):
                v_loc[i] = v_loc[i].drop_col(pos)
            for i in range(len(v_hat)):
                v_hat[i] = v_hat[i].drop_col(pos)
            for i in range(len(z_blk)):
                z_blk[i] = z_blk[i].drop_col(pos)
            cols.pop(pos)

        j = 0
        while j < restart and cols:
            over = [p for p in range(len(cols)) if iters[cols[p]] >= max_iter]
            for p in reversed(over):
                exit_column(p)
            if not cols:
                break
            ka = len(cols)
            if traced:
                trc.begin("arnoldi_step", "solver", j=j, k=ka)
                trc.begin("precond_apply", "solver")
            z = _precondition_block(system, precond, v_hat[j])
            if traced:
                trc.end()
            if basic:
                z = system.assemble_block(system.localize_block(z))
            z_blk.append(z)
            if traced:
                trc.begin("matvec", "solver")
            w_loc = system.matvec_local_block(z)
            if traced:
                trc.end()
            w_hat = system.assemble_block(w_loc)

            hblk = np.empty((j + 2, ka))
            if traced:
                trc.begin("orthogonalize", "solver")
            if orthogonalization == "cgs":
                partial = partial_buf[: j + 1, :, :ka]

                def dots_body(r: int) -> None:
                    wr = w_hat.parts[r]
                    for i in range(j + 1):
                        vp = v_loc[i].parts[r]
                        for cc in range(ka):
                            partial[i, r, cc] = vp[:, cc] @ wr[:, cc]
                    comm.add_flops(r, 2 * (j + 1) * wr.size)

                comm.run_ranks(dots_body, work=2 * (j + 1) * n_rows * ka)
                hblk[: j + 1] = comm.allreduce_sum(
                    list(partial.transpose(1, 0, 2)), words=(j + 1) * ka
                )

                new_loc: list = [None] * n_parts
                new_hat: list = [None] * n_parts

                def ortho_body(r: int) -> None:
                    wl = w_loc.parts[r]
                    wh = w_hat.parts[r]
                    for i in range(j + 1):
                        hi = hblk[i]
                        wl = wl - hi * v_loc[i].parts[r]
                        wh = wh - hi * v_hat[i].parts[r]
                    new_loc[r] = wl
                    new_hat[r] = wh
                    comm.add_flops(r, 4 * (j + 1) * wl.size)

                comm.run_ranks(ortho_body, work=4 * (j + 1) * n_rows * ka)
                w_loc = DistBlock(new_loc, "local", comm)
                w_hat = DistBlock(new_hat, "global", comm)
            else:
                for i in range(j + 1):
                    hi = system.dot_block(v_loc[i], w_hat)
                    hblk[i] = hi
                    w_loc = _sub_scaled_block(w_loc, v_loc[i], hi)
                    w_hat = _sub_scaled_block(w_hat, v_hat[i], hi)
            if basic:
                w_hat = system.assemble_block(system.localize_block(w_hat))
            norm_sq = system.dot_block(w_loc, w_hat)
            hblk[j + 1] = np.sqrt(np.maximum(norm_sq, 0.0))
            if traced:
                trc.end()  # orthogonalize
                trc.begin("givens_update", "solver")

            exits: list = []
            for pos in range(ka):
                c = cols[pos]
                mon = monitors[c]
                hcol = hblk[:, pos]
                if not mon.check_finite(hcol, iters[c] + 1, "Hessenberg column"):
                    exits.append(pos)
                    continue
                res = lsqs[c].append_column(hcol)
                iters[c] += 1
                histories[c].append(res / norm_b0[c])
                if not mon.check_divergence(res / norm_b0[c], iters[c]):
                    exits.append(pos)
                    continue
                if res / norm_b0[c] <= tol:
                    claimed[c] = True
                    exits.append(pos)
                    continue
                if hblk[j + 1, pos] <= breakdown_tol:
                    mon.note_breakdown(float(hblk[j + 1, pos]), iters[c])
                    broke[c] = True
                    exits.append(pos)
            if traced:
                trc.end()  # givens_update

            if exits:
                keep = [p for p in range(ka) if p not in exits]
                for p in reversed(exits):
                    exit_column(p)
                if not cols:
                    if traced:
                        trc.end()  # arnoldi_step
                    break
                w_loc = w_loc.take_cols(keep)
                w_hat = w_hat.take_cols(keep)
                h_next = hblk[j + 1, np.asarray(keep)]
            else:
                h_next = hblk[j + 1]
            v_loc.append(w_loc.scale_cols(1.0 / h_next))
            v_hat.append(w_hat.scale_cols(1.0 / h_next))
            j += 1
            if traced:
                trc.end()  # arnoldi_step

        # Solution update for the columns that rode out the full cycle (all
        # share the same Krylov dimension, so one batched update suffices).
        if cols:
            ys = [lsqs[c].solve() for c in cols]
            m = len(ys[0])
            if m:
                y_mat = np.array(ys)
                idx = np.asarray(cols)

                def x_body(r: int) -> None:
                    xr = x_hat.parts[r]
                    for i in range(m):
                        xr[:, idx] = xr[:, idx] + z_blk[i].parts[r] * y_mat[:, i]
                    comm.add_flops(r, 2 * m * xr.shape[0] * len(idx))

                comm.run_ranks(x_body, work=2 * m * n_rows * len(idx))

        # One batched residual recompute for every cycle participant
        # (mid-cycle exits included: their claims are verified here, the
        # no-silent-wrong-answer invariant of the single-RHS solver).
        idxp = np.asarray(participants)
        b_sub = b_blk.take_cols(idxp)
        x_sub = x_hat.take_cols(idxp)
        r_loc = b_sub - system.matvec_local_block(x_sub)
        r_hat = system.assemble_block(r_loc)
        beta_arr = np.sqrt(np.maximum(system.dot_block(r_loc, r_hat), 0.0))
        r_cols = list(participants)

        for p2, c in enumerate(participants):
            mon = monitors[c]
            beta_c = float(beta_arr[p2])
            if not mon.check_finite(beta_c, iters[c], "recomputed residual"):
                continue
            true_rel = beta_c / norm_b0[c]
            if true_rel <= tol:
                converged[c] = True
            elif claimed[c]:
                converged[c] = mon.confirm_convergence(true_rel, iters[c])
            elif broke[c]:
                mon.confirm_breakdown(true_rel, iters[c])
            if not converged[c]:
                mon.cycle_end(true_rel, iters[c])

        active = [
            c for c in participants
            if not (converged[c] or monitors[c].fatal or iters[c] >= max_iter)
        ]
        if traced:
            trc.end()  # cycle

    # Unscale on the way out (Algorithm 4, step 5): u = D x, per column.
    u_blk = DistBlock(
        [d[:, None] * p for d, p in zip(system.d_parts, x_hat.parts)],
        "global",
        comm,
    )
    u_full = system.to_global_block(u_blk)
    results = []
    for c in range(k):
        if zero_col[c]:
            results.append(
                SolveResult(np.zeros(system.n_global), True, 0, 0, histories[c])
            )
            continue
        if bad_init[c]:
            results.append(
                SolveResult(
                    np.zeros(system.n_global), False, 0, 0, histories[c],
                    monitors[c].finalize(False, 0, 1.0),
                )
            )
            continue
        final_rel = histories[c][-1] if histories[c] else float("nan")
        results.append(
            SolveResult(
                np.ascontiguousarray(u_full[:, c]),
                converged[c],
                iters[c],
                n_restarts[c],
                histories[c],
                monitors[c].finalize(converged[c], iters[c], final_rel),
            )
        )
    return results
