"""The paper's contribution: distributed FGMRES solvers.

* :mod:`repro.core.distributed` — local/global distributed vector and
  matrix formats (Definitions 1-2), the distributed norm-1 scaling
  (Algorithms 3-4) and the EDD system builder.
* :mod:`repro.core.edd` — element-based-decomposition FGMRES: the basic
  Algorithm 5 and the enhanced Algorithm 6 (one nearest-neighbour exchange
  per Arnoldi step).
* :mod:`repro.core.rdd` — the row-based baseline, Algorithm 8.
* :mod:`repro.core.driver` — one-call API building mesh → partition →
  scale → precondition → solve, returning solution plus communication
  statistics and modeled machine times.
* :mod:`repro.core.complexity` — the Table 1 analytic cost model, asserted
  against the recorded counters.
"""

from repro.core.distributed import (
    DistVector,
    EDDSystem,
    build_edd_system,
    build_edd_system_from_assembler,
)
from repro.core.edd import edd_fgmres
from repro.core.rdd import RDDSystem, build_rdd_system, rdd_fgmres
from repro.core.driver import ParallelSolveSummary, solve_cantilever
from repro.core.options import SolverOptions
from repro.core.complexity import ArnoldiStepCost, arnoldi_step_cost
from repro.core.schur import SchurResult, schur_solve

__all__ = [
    "SolverOptions",
    "DistVector",
    "EDDSystem",
    "build_edd_system",
    "build_edd_system_from_assembler",
    "edd_fgmres",
    "RDDSystem",
    "build_rdd_system",
    "rdd_fgmres",
    "ParallelSolveSummary",
    "solve_cantilever",
    "ArnoldiStepCost",
    "arnoldi_step_cost",
    "SchurResult",
    "schur_solve",
]
