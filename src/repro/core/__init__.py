"""The paper's contribution: distributed FGMRES solvers.

* :mod:`repro.core.distributed` — local/global distributed vector and
  matrix formats (Definitions 1-2), the distributed norm-1 scaling
  (Algorithms 3-4) and the EDD system builder.
* :mod:`repro.core.edd` — element-based-decomposition FGMRES: the basic
  Algorithm 5 and the enhanced Algorithm 6 (one nearest-neighbour exchange
  per Arnoldi step).
* :mod:`repro.core.rdd` — the row-based baseline, Algorithm 8.
* :mod:`repro.core.driver` — one-call API building mesh → partition →
  scale → precondition → solve, returning solution plus communication
  statistics and modeled machine times.
* :mod:`repro.core.session` — prepared-system sessions and the batched
  multi-RHS solve path (block Arnoldi over ``(n, k)`` right-hand-side
  blocks with coalesced interface exchanges).
* :mod:`repro.core.complexity` — the Table 1 analytic cost model, asserted
  against the recorded counters.
"""

from repro.core.distributed import (
    DistBlock,
    DistVector,
    EDDSystem,
    build_edd_system,
    build_edd_system_from_assembler,
)
from repro.core.edd import edd_fgmres, edd_fgmres_block
from repro.core.rdd import (
    RDDSystem,
    build_rdd_system,
    rdd_fgmres,
    rdd_fgmres_block,
)
from repro.core.driver import ParallelSolveSummary, solve_cantilever
from repro.core.options import SolverOptions
from repro.core.session import (
    BatchSolveSummary,
    PreparedSystem,
    SolveSession,
    solve_cantilever_batch,
)
from repro.core.complexity import ArnoldiStepCost, arnoldi_step_cost
from repro.core.schur import SchurResult, schur_solve

__all__ = [
    "SolverOptions",
    "DistBlock",
    "DistVector",
    "EDDSystem",
    "build_edd_system",
    "build_edd_system_from_assembler",
    "edd_fgmres",
    "edd_fgmres_block",
    "RDDSystem",
    "build_rdd_system",
    "rdd_fgmres",
    "rdd_fgmres_block",
    "ParallelSolveSummary",
    "solve_cantilever",
    "BatchSolveSummary",
    "PreparedSystem",
    "SolveSession",
    "solve_cantilever_batch",
    "ArnoldiStepCost",
    "arnoldi_step_cost",
    "SchurResult",
    "schur_solve",
]
