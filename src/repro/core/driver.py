"""High-level solve driver: the one-call public API.

``solve_cantilever`` wires the full pipeline of Algorithm 2 — mesh,
partition, subdomain assembly, distributed norm-1 scaling, polynomial
preconditioning, FGMRES solve — and returns the solution together with the
recorded communication statistics and modeled machine times, which is what
every benchmark consumes.

Configuration travels in one :class:`repro.core.options.SolverOptions`
value passed as ``options=``.  The former keyword-per-knob signature
(``method=``, ``precond=``, ``restart=`` ...) was deprecated in PR 2 and
has been removed: stray keywords now raise ``TypeError`` pointing at
``SolverOptions``.
"""

from __future__ import annotations

import time  # noqa: F401  (re-exported for timing call sites)
from dataclasses import dataclass, field

import numpy as np

from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION
from repro.fem.cantilever import CantileverProblem
from repro.parallel.machine import MachineModel, modeled_time
from repro.parallel.stats import CommStats
from repro.precond.spec import make_preconditioner  # noqa: F401  (re-export)
from repro.solvers.diagnostics import DiagnosticEvent
from repro.solvers.result import SolveResult  # noqa: F401  (public re-export)

#: Convergence-verification slack: a solve that claims convergence at
#: ``tol`` (measured on the scaled, preconditioned system) is demoted when
#: its *unscaled* residual against the serially assembled operator exceeds
#: ``tol * _VERIFY_SLACK`` — generous enough for the norm-1 scaling's
#: conditioning, tight enough that any injected-fault wrong answer trips it.
_VERIFY_SLACK = 100.0


@dataclass
class ParallelSolveSummary:
    """A solve plus everything the evaluation reports about it.

    Attributes
    ----------
    result:
        The :class:`SolveResult` (``x`` is the unscaled global solution).
    stats:
        Per-rank operation counters of the solve phase.
    n_parts:
        Rank count.
    method:
        ``"edd-basic"``, ``"edd-enhanced"`` or ``"rdd"``.
    precond_name:
        Display name of the preconditioner used.
    options:
        The resolved :class:`SolverOptions` the solve ran with.
    comm_backend:
        Name of the communicator backend that executed the rank loops
        (``"virtual"``, ``"thread"``, ``"process"`` or ``"chaos"``).
    wall_time:
        Measured wall-clock seconds of the solve phase (system build
        excluded) — complements :meth:`modeled_time`.
    setup_time:
        Measured wall-clock seconds of the setup phase (partition,
        subdomain assembly, scaling, preconditioner construction).  Zero
        when the solve reused a cached
        :class:`repro.core.session.PreparedSystem`.
    true_residual:
        Unscaled relative residual ``||b - A x|| / ||b||`` recomputed by
        the driver against the *serially assembled* operator — built
        before any communicator exists, so it is trustworthy even when the
        distributed solve ran through a fault-injecting backend.  A solve
        that claims convergence but fails this check is demoted (see
        :data:`_VERIFY_SLACK`) with a ``residual_mismatch`` diagnostic.
    """

    result: SolveResult
    stats: CommStats
    n_parts: int
    method: str
    precond_name: str
    options: SolverOptions | None = None
    comm_backend: str = "virtual"
    wall_time: float = field(default=0.0, compare=False)
    true_residual: float = field(default=float("nan"), compare=False)
    setup_time: float = field(default=0.0, compare=False)

    def modeled_time(self, machine: MachineModel) -> float:
        """Modeled wall-clock seconds on ``machine``."""
        return modeled_time(self.stats, machine)

    @property
    def trace(self) -> dict | None:
        """The solve's observability export when it was traced
        (:class:`~repro.core.outcome.SolveOutcome` surface); None
        otherwise.  Lives on the result for single solves."""
        return self.result.trace

    def to_dict(self, include_x: bool = False) -> dict:
        """JSON-serializable summary: result, counters and configuration.

        Consumed by ``repro solve --json`` (via
        :func:`repro.io.records.record_from_summary`) and the parallel
        benchmark emitter.  Carries ``schema_version``
        (:data:`repro.core.outcome.SCHEMA_VERSION`) like every serialized
        solve artifact.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "method": self.method,
            "precond": self.precond_name,
            "n_parts": self.n_parts,
            "comm_backend": self.comm_backend,
            "wall_time": float(self.wall_time),
            "setup_time": float(self.setup_time),
            "true_residual": float(self.true_residual),
            "result": self.result.to_dict(include_x=include_x),
            "stats": self.stats.to_dict(),
            "options": None if self.options is None else self.options.to_dict(),
        }


def solve_cantilever(
    problem: CantileverProblem | int,
    n_parts: int = 1,
    options: SolverOptions | None = None,
    tracer=None,
    **kwargs,
) -> ParallelSolveSummary:
    """Solve a cantilever problem with the chosen decomposition.

    Parameters
    ----------
    problem:
        A prebuilt :class:`CantileverProblem` or a Table 2 mesh id.
    n_parts:
        Number of subdomains / ranks ``P``.
    options:
        A :class:`SolverOptions` bundling every solver knob — method,
        preconditioner spec, restart/tol/max_iter, partitioner, kernel and
        communicator backends, orthogonalization and the elastodynamics
        shift.  Defaults to ``SolverOptions()`` (enhanced EDD, GLS(7)).
    tracer:
        Optional :class:`repro.obs.Tracer`; records the setup / solve /
        verify phases, per-step solver spans, exchange spans and a
        per-iteration metrics stream, attached to the returned summary as
        ``summary.result.trace``.
    **kwargs:
        Rejected.  The PR 2 per-knob keywords (``method=``, ``precond=``,
        ...) completed their deprecation cycle; any keyword here raises
        ``TypeError`` naming :class:`SolverOptions`.
    """
    if kwargs:
        raise TypeError(
            "solve_cantilever() got unexpected keyword argument(s) "
            f"{sorted(kwargs)}; solver knobs are fields of SolverOptions — "
            "pass options=SolverOptions(...)"
        )
    options = options if options is not None else SolverOptions()
    from repro.core.session import PreparedSystem

    prepared = PreparedSystem.build(problem, n_parts, options, tracer=tracer)
    try:
        return prepared.solve(tracer=tracer)
    finally:
        prepared.close()


def _verify_operator(problem, options: SolverOptions):
    """The clean serially assembled operator ground truth is measured
    against — ``problem.stiffness`` (or the dynamic combination) exactly as
    it existed before any communicator was created."""
    if options.dynamic:
        alpha, beta = options.mass_shift
        return _combine(problem.stiffness, problem.mass, beta, alpha)
    return problem.stiffness


def _verify_verdict(rel: float, options: SolverOptions, result) -> float:
    """Shared demotion logic of the verification paths: a claimed
    convergence whose true residual exceeds ``tol * _VERIFY_SLACK`` loses
    its ``converged`` flag and gains a ``residual_mismatch`` diagnostic."""
    if result.converged and not (rel <= options.tol * _VERIFY_SLACK):
        result.converged = False
        result.diagnostics.append(
            DiagnosticEvent(
                result.iterations,
                "residual_mismatch",
                "driver verification against the serially assembled operator: "
                f"unscaled relative residual {rel:.3e} exceeds "
                f"{options.tol:.1e} x {_VERIFY_SLACK:g}",
            )
        )
    return rel


def _verify_residual(a, b, options: SolverOptions, result) -> float:
    """Unscaled relative residual of ``result`` against operator ``a`` and
    right-hand side ``b``, demoting a claimed convergence that fails the
    :data:`_VERIFY_SLACK` check."""
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return 0.0
    rel = float(np.linalg.norm(b - a @ result.x) / norm_b)
    return _verify_verdict(rel, options, result)


def streamed_matvec(
    mesh,
    material,
    bc,
    x: np.ndarray,
    kind: str = "stiffness",
    scale: float = 1.0,
    chunk: int | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``out += scale * (A_free @ x)`` without materializing ``A``.

    Streams element COO chunks through
    :func:`repro.fem.assembly.iter_element_coo` and scatter-accumulates
    ``scale * data * x[col]`` into ``out`` per chunk — so verification of
    a large-mesh solve costs one chunk of COO entries at a time instead
    of the global CSR the serial verification operator would build.  The
    summation order differs from a CSR matvec, so results agree to
    rounding (fine for the tolerance-based residual check), not bitwise.
    """
    from repro.fem.assembly import DEFAULT_CHUNK, iter_element_coo

    if chunk is None:
        chunk = DEFAULT_CHUNK
    full_to_free = bc.full_to_free()
    if out is None:
        out = np.zeros(bc.n_free)
    for rows, cols, data in iter_element_coo(mesh, material, kind, chunk=chunk):
        r = full_to_free[rows]
        c = full_to_free[cols]
        keep = (r >= 0) & (c >= 0)
        np.add.at(out, r[keep], scale * data[keep] * x[c[keep]])
    return out


def streamed_verify_residual(
    mesh,
    material,
    bc,
    b: np.ndarray,
    options: SolverOptions,
    result,
    chunk: int | None = None,
) -> float:
    """Memory-bounded counterpart of :func:`_verify_residual`.

    Recomputes the unscaled relative residual ``||b - A x|| / ||b||``
    with :func:`streamed_matvec` (the dynamic combination streams scaled
    stiffness then scaled mass chunks) and applies the same
    :data:`_VERIFY_SLACK` demotion verdict — so large-mesh runs built
    through :func:`repro.fem.cantilever.cantilever_inputs` get the same
    trustworthy ground-truth check without a global matrix ever existing.
    """
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return 0.0
    if options.dynamic:
        alpha, beta = options.mass_shift
        ax = streamed_matvec(
            mesh, material, bc, result.x, "stiffness", beta, chunk
        )
        ax = streamed_matvec(
            mesh, material, bc, result.x, "mass", alpha, chunk, out=ax
        )
    else:
        ax = streamed_matvec(mesh, material, bc, result.x, "stiffness", 1.0,
                             chunk)
    rel = float(np.linalg.norm(b - ax) / norm_b)
    return _verify_verdict(rel, options, result)


def _verify_solution(problem, options: SolverOptions, result, a=None) -> float:
    """Recompute the unscaled residual against the clean serial operator.

    The distributed solve only ever sees data that flowed through the
    communicator; a fault injected during *system construction* (e.g. in
    the scaling-diagonal assembly) makes the solver coherently solve a
    corrupted operator, which no solver-internal guard can detect.  This
    check closes that hole: ``problem.stiffness``/``problem.load`` were
    assembled serially before any communicator existed, so
    ``||b - A x|| / ||b||`` here is ground truth.  A claimed convergence
    whose true residual exceeds ``tol * _VERIFY_SLACK`` (or is non-finite)
    is demoted with a ``residual_mismatch`` diagnostic.

    ``a`` lets callers that solve repeatedly (sessions) pass the cached
    operator instead of re-assembling it per solve.
    """
    if a is None:
        a = _verify_operator(problem, options)
    return _verify_residual(a, problem.load, options, result)


def _combine(k, m, beta: float, alpha: float):
    """``beta*K + alpha*M`` via COO concatenation (patterns coincide for
    consistent FEM matrices but this stays general)."""
    from repro.sparse.coo import COOMatrix

    kc = k.tocoo()
    mc = m.tocoo()
    return COOMatrix(
        kc.shape,
        np.concatenate([kc.rows, mc.rows]),
        np.concatenate([kc.cols, mc.cols]),
        np.concatenate([beta * kc.data, alpha * mc.data]),
    ).tocsr()
