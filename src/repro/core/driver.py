"""High-level solve driver: the one-call public API.

``solve_cantilever`` wires the full pipeline of Algorithm 2 — mesh,
partition, subdomain assembly, distributed norm-1 scaling, polynomial
preconditioning, FGMRES solve — and returns the solution together with the
recorded communication statistics and modeled machine times, which is what
every benchmark consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.fem.cantilever import CantileverProblem, cantilever_problem
from repro.parallel.machine import MachineModel, modeled_time
from repro.parallel.stats import CommStats
from repro.partition.element_partition import ElementPartition
from repro.partition.node_partition import NodePartition
from repro.precond.gls import GLSPolynomial
from repro.precond.neumann import NeumannPolynomial
from repro.solvers.result import SolveResult
from repro.sparse.kernels import use_backend
from repro.spectrum.intervals import SpectrumIntervals


@dataclass
class ParallelSolveSummary:
    """A solve plus everything the evaluation reports about it.

    Attributes
    ----------
    result:
        The :class:`SolveResult` (``x`` is the unscaled global solution).
    stats:
        Per-rank operation counters of the solve phase.
    n_parts:
        Rank count.
    method:
        ``"edd-basic"``, ``"edd-enhanced"`` or ``"rdd"``.
    precond_name:
        Display name of the preconditioner used.
    """

    result: SolveResult
    stats: CommStats
    n_parts: int
    method: str
    precond_name: str

    def modeled_time(self, machine: MachineModel) -> float:
        """Modeled wall-clock seconds on ``machine``."""
        return modeled_time(self.stats, machine)


def make_preconditioner(spec: str | None, theta: SpectrumIntervals | None = None):
    """Parse a preconditioner spec string.

    ``"gls(7)"``, ``"neumann(20)"`` and ``None``/``"none"`` are accepted —
    the preconditioners applicable to distributed unassembled systems.
    ``"bj-ilu0"`` (block-Jacobi ILU, RDD only) is resolved later by
    :func:`solve_cantilever` since it needs the built system; here it
    returns the spec marker.  ``theta`` defaults to the post-scaling
    window :math:`(10^{-6}, 1)`.
    """
    if spec is None or spec == "none":
        return None
    if theta is None:
        theta = SpectrumIntervals.single(1e-6, 1.0)
    spec = spec.strip().lower()
    if spec.startswith("gls(") and spec.endswith(")"):
        return GLSPolynomial(theta, int(spec[4:-1]))
    if spec.startswith("neumann(") and spec.endswith(")"):
        return NeumannPolynomial(int(spec[8:-1]))
    if spec == "bj-ilu0":
        return "bj-ilu0"
    raise ValueError(f"unknown preconditioner spec {spec!r}")


def solve_cantilever(
    problem: CantileverProblem | int,
    n_parts: int = 1,
    method: str = "edd-enhanced",
    precond: str | None = "gls(7)",
    restart: int = 25,
    tol: float = 1e-6,
    partition_method: str = "rcb",
    dynamic: bool = False,
    mass_shift: tuple = (1.0, 2.5e-1),
    max_iter: int = 10_000,
    kernel_backend: str | None = None,
) -> ParallelSolveSummary:
    """Solve a cantilever problem with the chosen decomposition.

    Parameters
    ----------
    problem:
        A prebuilt :class:`CantileverProblem` or a Table 2 mesh id.
    n_parts:
        Number of subdomains / ranks ``P``.
    method:
        ``"edd-enhanced"`` (Algorithm 6, default), ``"edd-basic"``
        (Algorithm 5) or ``"rdd"`` (Algorithm 8).
    precond:
        Spec string for :func:`make_preconditioner`.
    dynamic:
        Solve the elastodynamics effective system
        :math:`(\\alpha M + \\beta K)u = f` (Eq. 52) instead of the static
        one; ``mass_shift`` supplies :math:`(\\alpha, \\beta)`.
    kernel_backend:
        Sparse-kernel backend name for this solve (see
        :mod:`repro.sparse.kernels`); None keeps the session default
        (``REPRO_KERNEL_BACKEND`` or ``"numpy"``).
    """
    if kernel_backend is not None:
        with use_backend(kernel_backend):
            return solve_cantilever(
                problem,
                n_parts=n_parts,
                method=method,
                precond=precond,
                restart=restart,
                tol=tol,
                partition_method=partition_method,
                dynamic=dynamic,
                mass_shift=mass_shift,
                max_iter=max_iter,
            )
    if isinstance(problem, int):
        problem = cantilever_problem(problem, with_mass=dynamic)
    if dynamic and problem.mass is None:
        raise ValueError("dynamic solve requires a problem built with_mass=True")
    pc = make_preconditioner(precond)
    if pc == "bj-ilu0" and method != "rdd":
        raise ValueError(
            "bj-ilu0 is a local (assembled-block) preconditioner; it only "
            "applies to the rdd method"
        )
    pc_name = pc.name if pc is not None and pc != "bj-ilu0" else (
        "BJ-ILU0" if pc == "bj-ilu0" else "I"
    )

    if method in ("edd-basic", "edd-enhanced"):
        epart = ElementPartition.build(problem.mesh, n_parts, partition_method)
        shift = mass_shift if dynamic else None
        f_full = problem.bc.expand(problem.load)
        system = build_edd_system(
            problem.mesh,
            problem.material,
            problem.bc,
            epart,
            f_full,
            mass_shift=shift,
        )
        result = edd_fgmres(
            system,
            pc,
            restart=restart,
            tol=tol,
            max_iter=max_iter,
            variant="basic" if method == "edd-basic" else "enhanced",
        )
        stats = system.comm.stats
    elif method == "rdd":
        npart = NodePartition.build(problem.mesh, n_parts, partition_method)
        if dynamic:
            alpha, beta = mass_shift
            k = _combine(problem.stiffness, problem.mass, beta, alpha)
        else:
            k = problem.stiffness
        system = build_rdd_system(
            problem.mesh, problem.bc, npart, k, problem.load
        )
        if pc == "bj-ilu0":
            from repro.precond.block_jacobi import BlockJacobiILU

            pc = BlockJacobiILU(system)
            pc_name = pc.name
        result = rdd_fgmres(
            system, pc, restart=restart, tol=tol, max_iter=max_iter
        )
        stats = system.comm.stats
    else:
        raise ValueError(f"unknown method {method!r}")

    return ParallelSolveSummary(
        result=result,
        stats=stats,
        n_parts=n_parts,
        method=method,
        precond_name=pc_name,
    )


def _combine(k, m, beta: float, alpha: float):
    """``beta*K + alpha*M`` via COO concatenation (patterns coincide for
    consistent FEM matrices but this stays general)."""
    from repro.sparse.coo import COOMatrix

    kc = k.tocoo()
    mc = m.tocoo()
    return COOMatrix(
        kc.shape,
        np.concatenate([kc.rows, mc.rows]),
        np.concatenate([kc.cols, mc.cols]),
        np.concatenate([beta * kc.data, alpha * mc.data]),
    ).tocsr()
