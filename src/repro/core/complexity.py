"""Analytic per-Arnoldi-step cost model (Table 1).

For a degree-``m`` polynomial preconditioner, one Arnoldi step of the three
solver variants costs:

==============  ==================  ===========  ========
variant          neighbour exchanges  allreduces   matvecs
==============  ==================  ===========  ========
EDD basic        ``m + 3``            2            ``m + 1``
EDD enhanced     ``m + 1``            2            ``m + 1``
RDD              ``m + 1`` (halos)    2            ``m + 1``
==============  ==================  ===========  ========

The two allreduces are the batched Gram-Schmidt coefficients and the new
basis vector's norm.  The benchmark ``test_table1_complexity`` asserts
these formulas against the counters recorded by an actual run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArnoldiStepCost:
    """Per-iteration collective counts of one Arnoldi step.

    ``exchanges`` counts nearest-neighbour interface assemblies (EDD) or
    halo scatter/gathers (RDD); ``reductions`` counts allreduce calls;
    ``matvecs`` counts sparse matrix-vector products (preconditioner
    included).
    """

    exchanges: int
    reductions: int
    matvecs: int


def arnoldi_step_cost(variant: str, degree: int) -> ArnoldiStepCost:
    """The Table 1 entry for ``variant`` in ``{"edd-basic",
    "edd-enhanced", "rdd"}`` with a degree-``degree`` polynomial
    preconditioner (0 = unpreconditioned)."""
    if degree < 0:
        raise ValueError("degree must be >= 0")
    if variant == "edd-basic":
        return ArnoldiStepCost(degree + 3, 2, degree + 1)
    if variant in ("edd-enhanced", "rdd"):
        return ArnoldiStepCost(degree + 1, 2, degree + 1)
    raise ValueError(f"unknown variant {variant!r}")
