"""Primal Schur-complement substructuring — the classical DD baseline.

The paper's introduction positions its EDD + polynomial approach against
"numerically scalable domain decomposition based solvers" of the
FETI/substructuring family.  This module implements the primal variant
(iterative substructuring) on the same element-based subdomains:

* per subdomain, split local DOFs into interior ``I`` (multiplicity 1) and
  interface ``B`` (shared), and eliminate the interior exactly with a
  dense Cholesky factorization of :math:`K_{II}^{(s)}`;
* solve the assembled interface Schur system
  :math:`S u_B = g`,  :math:`S = \\sum_s B_s^T S^{(s)} B_s`,
  :math:`S^{(s)} = K_{BB}^{(s)} - K_{BI}^{(s)} (K_{II}^{(s)})^{-1}
  K_{IB}^{(s)}`, by conjugate gradients (each matvec is embarrassingly
  parallel per subdomain plus one interface assembly);
* back-substitute the interior DOFs.

The contrast the benches draw: Schur CG converges in very few iterations
(the Schur complement is much better conditioned than ``K``), but every
subdomain pays a dense interior factorization and dense triangular solves
per iteration — exactly the direct-solver-like costs the paper's
polynomial-preconditioned approach avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import DirichletBC
from repro.fem.material import Material
from repro.fem.mesh import Mesh
from repro.parallel.comm import VirtualComm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map
from repro.sparse.coo import COOMatrix


@dataclass
class SchurResult:
    """Outcome of a substructuring solve.

    Attributes
    ----------
    x:
        Global solution on the free DOFs.
    converged:
        CG convergence flag.
    iterations:
        Interface CG iterations.
    n_interface:
        Size of the Schur system.
    factor_flops:
        Total flops charged for the interior factorizations (the setup
        cost the iterative EDD solver does not pay).
    stats:
        Per-rank counters of the iterative phase.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    n_interface: int
    factor_flops: int
    stats: object


def schur_solve(
    mesh: Mesh,
    material: Material,
    bc: DirichletBC,
    partition: ElementPartition,
    f_full: np.ndarray,
    tol: float = 1e-6,
    max_iter: int = 10_000,
) -> SchurResult:
    """Solve ``K u = f`` by primal Schur-complement substructuring."""
    submap = build_subdomain_map(mesh, partition, bc)
    comm = VirtualComm(submap)
    full_to_free = bc.full_to_free()
    f_free = f_full[bc.free]

    iface = np.flatnonzero(submap.multiplicity >= 2)
    if len(iface) == 0:
        raise ValueError("partition has no interface; use a direct solve")
    iface_pos = np.full(submap.n_global, -1, dtype=np.int64)
    iface_pos[iface] = np.arange(len(iface))

    # Ownership split of the rhs (each DOF's value on its lowest owner).
    owner = np.full(submap.n_global, -1, dtype=np.int64)
    for s in range(submap.n_parts - 1, -1, -1):
        owner[submap.l2g[s]] = s

    locals_: list = []
    factor_flops = 0
    g_iface = np.zeros(len(iface))
    for s in range(partition.n_parts):
        elems = partition.subdomain_elements(s)
        coo = assemble_matrix(mesh, material, "stiffness", element_subset=elems)
        r = full_to_free[coo.rows]
        c = full_to_free[coo.cols]
        keep = (r >= 0) & (c >= 0)
        g = submap.l2g[s]
        g2l = np.full(submap.n_global, -1, dtype=np.int64)
        g2l[g] = np.arange(len(g))
        k_local = (
            COOMatrix((len(g), len(g)), g2l[r[keep]], g2l[c[keep]], coo.data[keep])
            .tocsr()
            .toarray()
        )
        is_b = submap.multiplicity[g] >= 2
        bi = np.flatnonzero(is_b)
        ii = np.flatnonzero(~is_b)
        k_ii = k_local[np.ix_(ii, ii)]
        k_ib = k_local[np.ix_(ii, bi)]
        k_bi = k_local[np.ix_(bi, ii)]
        k_bb = k_local[np.ix_(bi, bi)]
        if len(ii):
            cho = scipy.linalg.cho_factor(k_ii, check_finite=False)
            factor_flops += len(ii) ** 3 // 3
        else:
            cho = None
        # rhs pieces: f_I owned locally (interior DOFs belong to one rank),
        # boundary contributions ownership-split then assembled below.
        f_i = np.where(owner[g[ii]] == s, f_free[g[ii]], 0.0)
        f_b = np.where(owner[g[bi]] == s, f_free[g[bi]], 0.0)
        if cho is not None and len(bi):
            g_s = f_b - k_bi @ scipy.linalg.cho_solve(
                cho, f_i, check_finite=False
            )
        else:
            g_s = f_b
        np.add.at(g_iface, iface_pos[g[bi]], g_s)
        locals_.append((g, bi, ii, cho, k_ib, k_bi, k_bb, f_i))

    def s_matvec(x_b: np.ndarray) -> np.ndarray:
        """Assembled Schur matvec; one interface exchange equivalent."""
        out = np.zeros(len(iface))
        for s, (g, bi, ii, cho, k_ib, k_bi, k_bb, _) in enumerate(locals_):
            xb = x_b[iface_pos[g[bi]]]
            y = k_bb @ xb
            comm.add_flops(s, 2 * k_bb.size)
            if cho is not None and len(ii):
                t = scipy.linalg.cho_solve(cho, k_ib @ xb, check_finite=False)
                y = y - k_bi @ t
                comm.add_flops(
                    s, 2 * k_ib.size + 2 * len(ii) ** 2 + 2 * k_bi.size
                )
            np.add.at(out, iface_pos[g[bi]], y)
            # charge the interface assembly like ⊕Σ∂Ω
            rs = comm.stats.ranks[s]
            rs.nbr_messages += len(submap.shared[s])
            rs.nbr_words += submap.exchange_words(s)
        return out

    # CG on the SPD Schur system.
    x_b = np.zeros(len(iface))
    r = g_iface - s_matvec(x_b)
    norm0 = np.linalg.norm(r)
    converged = norm0 == 0.0
    iters = 0
    if not converged:
        p = r.copy()
        rr = float(r @ r)
        while iters < max_iter:
            sp = s_matvec(p)
            denom = float(p @ sp)
            if denom <= 0:
                break
            alpha = rr / denom
            x_b += alpha * p
            r -= alpha * sp
            iters += 1
            for rank in comm.stats.ranks:
                rank.reductions += 2
                rank.reduction_words += 2
            rr_new = float(r @ r)
            if np.sqrt(rr_new) / norm0 <= tol:
                converged = True
                break
            p = r + (rr_new / rr) * p
            rr = rr_new

    # Back-substitution of interior DOFs.
    x = np.zeros(submap.n_global)
    x[iface] = x_b
    for s, (g, bi, ii, cho, k_ib, k_bi, k_bb, f_i) in enumerate(locals_):
        if cho is None or len(ii) == 0:
            continue
        xb = x_b[iface_pos[g[bi]]]
        x[g[ii]] = scipy.linalg.cho_solve(
            cho, f_i - k_ib @ xb, check_finite=False
        )
        comm.add_flops(s, 2 * k_ib.size + 2 * len(ii) ** 2)

    return SchurResult(
        x=x,
        converged=converged,
        iterations=iters,
        n_interface=len(iface),
        factor_flops=factor_flops,
        stats=comm.stats,
    )
