"""The unified solve-outcome contract shared by every result type.

Three kinds of objects describe a finished solve:

* :class:`repro.core.driver.ParallelSolveSummary` — one right-hand side
  through the one-shot driver or a prepared system;
* :class:`repro.core.session.BatchSolveSummary` — ``k`` right-hand sides
  through the batched block path;
* :class:`repro.service.SolveResponse` — one request's share of a
  (possibly coalesced) service solve.

They historically grew independently; :class:`SolveOutcome` pins the
common surface so callers never branch on the concrete type: a ``result``
payload, the communication ``stats`` of the solve that produced it, an
optional observability ``trace``, and a JSON-ready ``to_dict()`` whose
output carries :data:`SCHEMA_VERSION` under the ``"schema_version"`` key.

``SCHEMA_VERSION`` is the single version stamp of every serialized solve
artifact — summaries, service request/response messages, ``repro solve
--json`` run records and the golden files.  Bump it when a serialized
field changes meaning or disappears; adding optional fields does not
require a bump.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

#: Version stamp carried by every serialized solve artifact (summary
#: ``to_dict()`` payloads, :class:`repro.io.records.RunRecord`, service
#: messages, goldens).
SCHEMA_VERSION = 1


@runtime_checkable
class SolveOutcome(Protocol):
    """Structural protocol of a finished solve, whatever produced it.

    ``isinstance(obj, SolveOutcome)`` checks attribute presence at
    runtime (it is :func:`typing.runtime_checkable`), so conforming types
    only need the members below — no registration or inheritance.
    """

    @property
    def result(self):
        """The solution payload: a :class:`repro.solvers.result.SolveResult`
        (single solve), a list of them (batch), or the serialized result
        dict (service response)."""
        ...

    @property
    def stats(self):
        """Communication counters of the producing solve — a
        :class:`repro.parallel.stats.CommStats` (summaries) or its
        ``to_dict()`` payload (service responses).  Batched producers
        share one set of counters across columns by design."""
        ...

    @property
    def trace(self):
        """The ``repro-trace/1`` observability export when the solve was
        traced; None otherwise."""
        ...

    def to_dict(self) -> dict:
        """JSON-serializable payload; always carries
        ``"schema_version": SCHEMA_VERSION``."""
        ...
