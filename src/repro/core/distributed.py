"""Distributed data structures of the EDD formulation (Section 3.1).

Two vector formats coexist (Definitions 1 and 2, Fig. 5):

* **local distributed** :math:`\\tilde u^{(s)}` — each subdomain holds only
  the contributions of its own elements; interface values are partial and
  the true global vector is :math:`u = \\sum_s B_s^T \\tilde u^{(s)}`.
* **global distributed** :math:`\\hat u^{(s)}` — interface values are fully
  assembled and identical across sharing subdomains:
  :math:`\\hat u^{(s)} = B_s u`.

The nearest-neighbour exchange ``⊕Σ∂Ω`` converts local → global.  The
subdomain matrices :math:`\\hat K^{(s)}` are kept in *local distributed*
(unassembled) form forever — the paper's point is that no interface
assembly of the matrix ever happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import DirichletBC
from repro.fem.material import Material
from repro.fem.mesh import Mesh
from repro.parallel.comm import Comm, make_comm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import SubdomainMap, build_subdomain_map
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


class DistVector:
    """A distributed vector: one NumPy block per rank.

    Supports the vector arithmetic the Krylov recurrences need (``+``,
    ``-``, scalar ``*``, ``copy``) and charges the owning communicator one
    flop per element per arithmetic operation — so the recorded flops of a
    distributed run mirror what each MPI rank would execute.  Every
    operation is expressed as a per-rank closure dispatched through
    :meth:`Comm.run_ranks`, so the concurrent backends execute the P rank
    bodies genuinely in parallel while the serial backend runs them in
    rank order; results are identical either way.

    ``kind`` tags the format (``"local"`` or ``"global"``); arithmetic
    requires operands of matching kind (adding mixed formats is the classic
    EDD bug, Definition 1 vs 2).
    """

    __slots__ = ("parts", "kind", "comm")

    def __init__(self, parts: list, kind: str, comm: Comm):
        if kind not in ("local", "global"):
            raise ValueError("kind must be 'local' or 'global'")
        self.parts = parts
        self.kind = kind
        self.comm = comm

    def copy(self) -> "DistVector":
        """Deep copy (same kind, same communicator)."""
        return DistVector([p.copy() for p in self.parts], self.kind, self.comm)

    def _total_size(self) -> int:
        return sum(len(p) for p in self.parts)

    def _zip_map(self, other: "DistVector", op) -> "DistVector":
        """Elementwise binary op as a per-rank SPMD body (1 flop/element)."""
        comm = self.comm
        a, b = self.parts, other.parts
        out = [None] * len(a)

        def body(r: int) -> None:
            out[r] = op(a[r], b[r])
            comm.add_flops(r, len(out[r]))

        comm.run_ranks(body, work=self._total_size())
        return DistVector(out, self.kind, comm)

    def __add__(self, other: "DistVector") -> "DistVector":
        self._require_same(other)
        return self._zip_map(other, np.add)

    def __sub__(self, other: "DistVector") -> "DistVector":
        self._require_same(other)
        return self._zip_map(other, np.subtract)

    def __mul__(self, scalar) -> "DistVector":
        scalar = float(scalar)
        comm = self.comm
        a = self.parts
        out = [None] * len(a)

        def body(r: int) -> None:
            out[r] = scalar * a[r]
            comm.add_flops(r, len(a[r]))

        comm.run_ranks(body, work=self._total_size())
        return DistVector(out, self.kind, comm)

    __rmul__ = __mul__

    def _require_same(self, other: "DistVector") -> None:
        if not isinstance(other, DistVector):
            raise TypeError("DistVector arithmetic needs DistVector operands")
        if other.kind != self.kind:
            raise ValueError(
                f"cannot combine {self.kind!r} and {other.kind!r} distributed "
                "vectors; assemble first (Definitions 1-2)"
            )

    def local_dots(self, other: "DistVector") -> np.ndarray:
        """Per-rank partial inner products (no communication, no format
        check: Eq. 33 deliberately pairs a local with a global vector)."""
        comm = self.comm
        a, b = self.parts, other.parts
        out = np.empty(len(a))

        def body(r: int) -> None:
            out[r] = a[r] @ b[r]
            comm.add_flops(r, 2 * len(a[r]))

        comm.run_ranks(body, work=2 * self._total_size())
        return out


class DistBlock:
    """A distributed multi-vector: one C-ordered ``(n_local, k)`` NumPy
    block per rank.

    The batched counterpart of :class:`DistVector` for the multi-RHS solve
    path.  Arithmetic is elementwise (``+``, ``-``, scalar ``*``, ``copy``)
    so every column evolves exactly as the corresponding :class:`DistVector`
    would — column ``c`` of any expression is bit-identical to the same
    expression over single vectors.  Flop charging scales with ``size``
    (``k`` columns cost ``k`` times one column), while communication done
    through the block collectives costs the *same message count* as a
    single vector.
    """

    __slots__ = ("parts", "kind", "comm")

    def __init__(self, parts: list, kind: str, comm: Comm):
        if kind not in ("local", "global"):
            raise ValueError("kind must be 'local' or 'global'")
        self.parts = parts
        self.kind = kind
        self.comm = comm

    @property
    def k(self) -> int:
        """Number of columns (right-hand sides) carried by the block."""
        return self.parts[0].shape[1]

    def copy(self) -> "DistBlock":
        """Deep copy (same kind, same communicator)."""
        return DistBlock([p.copy() for p in self.parts], self.kind, self.comm)

    def _total_size(self) -> int:
        return sum(p.size for p in self.parts)

    def _zip_map(self, other: "DistBlock", op) -> "DistBlock":
        """Elementwise binary op as a per-rank SPMD body (1 flop/element)."""
        comm = self.comm
        a, b = self.parts, other.parts
        out = [None] * len(a)

        def body(r: int) -> None:
            out[r] = op(a[r], b[r])
            comm.add_flops(r, out[r].size)

        comm.run_ranks(body, work=self._total_size())
        return DistBlock(out, self.kind, comm)

    def __add__(self, other: "DistBlock") -> "DistBlock":
        self._require_same(other)
        return self._zip_map(other, np.add)

    def __sub__(self, other: "DistBlock") -> "DistBlock":
        self._require_same(other)
        return self._zip_map(other, np.subtract)

    def __mul__(self, scalar) -> "DistBlock":
        scalar = float(scalar)
        comm = self.comm
        a = self.parts
        out = [None] * len(a)

        def body(r: int) -> None:
            out[r] = scalar * a[r]
            comm.add_flops(r, a[r].size)

        comm.run_ranks(body, work=self._total_size())
        return DistBlock(out, self.kind, comm)

    __rmul__ = __mul__

    def _require_same(self, other: "DistBlock") -> None:
        if not isinstance(other, DistBlock):
            raise TypeError("DistBlock arithmetic needs DistBlock operands")
        if other.kind != self.kind:
            raise ValueError(
                f"cannot combine {self.kind!r} and {other.kind!r} distributed "
                "blocks; assemble first (Definitions 1-2)"
            )

    def scale_cols(self, scales: np.ndarray) -> "DistBlock":
        """Per-column scalar multiply: column ``c`` of the result is
        ``scales[c] * column c`` (the batched form of ``scalar * v``)."""
        scales = np.asarray(scales, dtype=np.float64)
        comm = self.comm
        a = self.parts
        out = [None] * len(a)

        def body(r: int) -> None:
            out[r] = a[r] * scales
            comm.add_flops(r, a[r].size)

        comm.run_ranks(body, work=self._total_size())
        return DistBlock(out, self.kind, comm)

    def take_cols(self, idx) -> "DistBlock":
        """New block holding columns ``idx`` (a gather; no flops charged —
        pure data movement used by the per-column convergence masking)."""
        idx = np.asarray(idx, dtype=np.int64)
        comm = self.comm
        a = self.parts
        out = [None] * len(a)

        def body(r: int) -> None:
            out[r] = np.ascontiguousarray(a[r][:, idx])

        comm.run_ranks(body, work=self._total_size())
        return DistBlock(out, self.kind, comm)

    def drop_col(self, pos: int) -> "DistBlock":
        """New block without column position ``pos`` (convergence-masking
        compaction when a column exits the Arnoldi loop)."""
        a = self.parts
        out = [np.delete(p, pos, axis=1) for p in a]
        return DistBlock(out, self.kind, self.comm)

    def local_dots(self, other: "DistBlock") -> np.ndarray:
        """Per-rank, per-column partial inner products: ``(n_parts, k)``.

        Each ``(r, c)`` entry is the same contiguous-stride ddot the
        single-vector :meth:`DistVector.local_dots` performs, so column
        ``c`` is bit-identical to the single-RHS partial products."""
        comm = self.comm
        a, b = self.parts, other.parts
        k = a[0].shape[1]
        out = np.empty((len(a), k))

        def body(r: int) -> None:
            ar, br = a[r], b[r]
            for c in range(k):
                out[r, c] = ar[:, c] @ br[:, c]
            comm.add_flops(r, 2 * ar.size)

        comm.run_ranks(body, work=2 * self._total_size())
        return out


@dataclass
class EDDSystem:
    """The diagonally-scaled element-based-decomposition system (Eq. 44).

    Attributes
    ----------
    submap:
        DOF sharing structure.
    comm:
        The virtual communicator (owns the counters).
    a_local:
        Per rank, the scaled local-distributed matrix
        :math:`\\hat A^{(s)} = \\hat D^{(s)}\\hat K^{(s)}\\hat D^{(s)}` in
        subdomain-local numbering.
    b_local:
        The scaled RHS in local-distributed format.
    d_parts:
        The global-distributed norm-1 scaling vector.
    owner_mask:
        Per rank, boolean over local DOFs marking the DOFs this rank owns
        (lowest sharing rank); used to convert global→local distributed
        without changing values.
    """

    submap: SubdomainMap
    comm: Comm
    a_local: list
    b_local: list
    d_parts: list
    owner_mask: list

    @property
    def n_parts(self) -> int:
        return self.submap.n_parts

    @property
    def nnz_total(self) -> int:
        """Total stored entries across subdomain matrices (cached); the
        per-matvec work estimate handed to ``run_ranks``."""
        cached = self.__dict__.get("_nnz_total")
        if cached is None:
            cached = sum(a.nnz for a in self.a_local)
            self.__dict__["_nnz_total"] = cached
        return cached

    @property
    def n_global(self) -> int:
        return self.submap.n_global

    # ------------------------------------------------------------------
    # Vector constructors / converters
    # ------------------------------------------------------------------
    def zeros(self, kind: str = "global") -> DistVector:
        """A zero distributed vector in the requested format."""
        return DistVector(
            [np.zeros(n) for n in self.submap.local_sizes], kind, self.comm
        )

    def distribute(self, x: np.ndarray) -> DistVector:
        """True global vector -> global-distributed (Definition 2)."""
        return DistVector(self.submap.restrict(x), "global", self.comm)

    def localize(self, v: DistVector) -> DistVector:
        """Global-distributed -> an equivalent local-distributed vector by
        ownership masking (each shared DOF kept on its lowest-rank owner).
        Value-preserving: assembling the result reproduces ``v``."""
        if v.kind != "global":
            raise ValueError("localize expects a global-distributed vector")
        parts = [p * m for p, m in zip(v.parts, self.owner_mask)]
        return DistVector(parts, "local", self.comm)

    def assemble(self, v: DistVector) -> DistVector:
        """The ``⊕Σ∂Ω`` nearest-neighbour interface assembly (Eq. 28):
        local-distributed -> global-distributed.  Communicates."""
        if v.kind != "local":
            raise ValueError("assemble expects a local-distributed vector")
        return DistVector(
            self.comm.interface_assemble(v.parts), "global", self.comm
        )

    def to_global_vector(self, v: DistVector) -> np.ndarray:
        """Collapse a distributed vector to one true global array (host-side
        gather; used only for verification and output, never in the solver
        loop)."""
        if v.kind == "local":
            return self.submap.assemble(v.parts)
        out = np.zeros(self.n_global)
        for g, p in zip(self.submap.l2g, v.parts):
            out[g] = p
        return out

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def rank_engine(self):
        """The rank-operation engine executing this system's per-rank
        compute: inline (virtual/thread/chaos, and small process systems)
        or resident in the worker-process pool.  The mode gate is
        re-evaluated on every call — a cheap env read — so tests can flip
        ``REPRO_PROCESS_RESIDENT`` between solves; the engine instance is
        cached per mode so resident state ships once per system."""
        from repro.parallel import resident

        mode = resident.engine_mode(self.comm, 2 * self.nnz_total)
        cached = self.__dict__.get("_engine")
        if cached is not None and cached[0] == mode:
            return cached[1]
        engine = (
            resident.ResidentEDDEngine(self)
            if mode == "resident"
            else resident.InlineEDDEngine(self)
        )
        self.__dict__["_engine"] = (mode, engine)
        return engine

    def matvec_local(self, v: DistVector, cache=None) -> DistVector:
        """:math:`\\tilde y^{(s)} = \\hat A^{(s)} \\hat x^{(s)}` (Eq. 37):
        global-distributed in, local-distributed out, zero communication.
        The P subdomain matvecs are independent rank bodies — the solve's
        dominant work, overlapped across cores by the thread backend and
        executed worker-resident under the process backend.  ``cache``
        labels an Arnoldi-step matvec so a resident engine retains the
        input (slot ``z[cache]``) and output for later basis operations;
        inline engines ignore it."""
        if v.kind != "global":
            raise ValueError("matvec needs a global-distributed input")
        return self.rank_engine().matvec_local(v, cache)

    def matvec_assembled(self, v: DistVector) -> DistVector:
        """Matvec followed by interface assembly: global in, global out.
        This is the operator the polynomial recurrences iterate."""
        return self.assemble(self.matvec_local(v))

    def dot(self, local: DistVector, glob: DistVector) -> float:
        """The mixed-format inner product of Eq. 33:
        :math:`\\langle x, y\\rangle = \\sum_s \\langle \\tilde x^{(s)},
        \\hat y^{(s)}\\rangle` — one allreduce, no neighbour exchange."""
        if local.kind != "local" or glob.kind != "global":
            raise ValueError("dot pairs a local with a global vector (Eq. 33)")
        return float(self.comm.allreduce_sum(local.local_dots(glob)))

    # ------------------------------------------------------------------
    # Batched (multi-RHS) counterparts
    # ------------------------------------------------------------------
    def zeros_block(self, k: int, kind: str = "global") -> DistBlock:
        """A zero distributed ``(n_local, k)`` block in the requested
        format."""
        return DistBlock(
            [np.zeros((n, k)) for n in self.submap.local_sizes],
            kind,
            self.comm,
        )

    def rhs_block(self, b: np.ndarray) -> DistBlock:
        """Scaled local-distributed RHS block from an ``(n_free, k)`` array
        of raw (unscaled, reduced) right-hand sides.

        Column ``c`` is bit-identical to the ``b_local`` the system builder
        would produce from ``b[:, c]`` — ownership split then ``D`` scaling.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 1:
            b = b.reshape(-1, 1)
        if b.shape[0] != self.n_global:
            raise ValueError(
                f"RHS block has {b.shape[0]} rows, expected {self.n_global}"
            )
        parts = _ownership_split_block(self.submap, b)
        return DistBlock(
            [d[:, None] * p for d, p in zip(self.d_parts, parts)],
            "local",
            self.comm,
        )

    def localize_block(self, v: DistBlock) -> DistBlock:
        """Block form of :meth:`localize` (ownership masking)."""
        if v.kind != "global":
            raise ValueError("localize expects a global-distributed block")
        parts = [p * m[:, None] for p, m in zip(v.parts, self.owner_mask)]
        return DistBlock(parts, "local", self.comm)

    def assemble_block(self, v: DistBlock) -> DistBlock:
        """Batched ``⊕Σ∂Ω`` interface assembly: one message per neighbour
        pair for all ``k`` columns (the coalesced exchange of the batched
        solve path)."""
        if v.kind != "local":
            raise ValueError("assemble expects a local-distributed block")
        return DistBlock(
            self.comm.interface_assemble_block(v.parts), "global", self.comm
        )

    def to_global_block(self, v: DistBlock) -> np.ndarray:
        """Collapse a distributed block to one ``(n_global, k)`` array
        (verification/output only, never inside the solver loop)."""
        out = np.zeros((self.n_global, v.k))
        if v.kind == "local":
            for g, p in zip(self.submap.l2g, v.parts):
                np.add.at(out, g, p)
        else:
            for g, p in zip(self.submap.l2g, v.parts):
                out[g] = p
        return out

    def matvec_local_block(self, v: DistBlock) -> DistBlock:
        """Batched Eq. 37 matvec: per rank one SpMM
        :math:`\\hat A^{(s)} \\hat X^{(s)}` over all ``k`` columns —
        global-distributed in, local-distributed out, zero communication."""
        if v.kind != "global":
            raise ValueError("matvec needs a global-distributed input")
        return self.rank_engine().matvec_local_block(v)

    def matvec_assembled_block(self, v: DistBlock) -> DistBlock:
        """Batched matvec followed by batched interface assembly — the
        operator the block polynomial recurrences iterate."""
        return self.assemble_block(self.matvec_local_block(v))

    def dot_block(self, local: DistBlock, glob: DistBlock) -> np.ndarray:
        """Per-column mixed-format inner products (Eq. 33): ``(k,)``
        results from ONE allreduce carrying ``k`` words."""
        if local.kind != "local" or glob.kind != "global":
            raise ValueError("dot pairs a local with a global block (Eq. 33)")
        partial = local.local_dots(glob)
        return self.comm.allreduce_sum(list(partial), words=local.k)


def _ownership_split(submap: SubdomainMap, x: np.ndarray) -> list:
    """Split a true global vector into local-distributed parts by assigning
    each DOF's full value to its lowest-rank owner."""
    owner = np.full(submap.n_global, -1, dtype=np.int64)
    for s in range(submap.n_parts - 1, -1, -1):
        owner[submap.l2g[s]] = s
    parts = []
    for s in range(submap.n_parts):
        g = submap.l2g[s]
        mask = owner[g] == s
        parts.append(np.where(mask, x[g], 0.0))
    return parts


def _ownership_split_block(submap: SubdomainMap, x: np.ndarray) -> list:
    """Block form of :func:`_ownership_split`: split an ``(n_global, k)``
    array into local-distributed ``(n_local, k)`` parts (column ``c`` is
    bit-identical to ``_ownership_split`` of ``x[:, c]``)."""
    owner = np.full(submap.n_global, -1, dtype=np.int64)
    for s in range(submap.n_parts - 1, -1, -1):
        owner[submap.l2g[s]] = s
    parts = []
    for s in range(submap.n_parts):
        g = submap.l2g[s]
        mask = owner[g] == s
        parts.append(np.where(mask[:, None], x[g], 0.0))
    return parts


def build_edd_system(
    mesh: Mesh,
    material: Material,
    bc: DirichletBC,
    partition: ElementPartition,
    f_full: np.ndarray,
    mass_shift: tuple | None = None,
    comm_backend: str | None = None,
) -> EDDSystem:
    """Assemble the per-subdomain scaled *elasticity* system of Algorithm 4.

    Per subdomain: assemble :math:`\\hat K^{(s)}` from its own elements only
    (never across the interface), reduce by the Dirichlet conditions,
    restrict to subdomain-local numbering.  Then run the distributed norm-1
    scaling (Algorithm 3): local row 1-norms, one interface assembly to sum
    them, :math:`\\hat D^{(s)} = 1/\\sqrt{\\hat d^{(s)}}`, and scale matrix
    and RHS in place.

    ``mass_shift = (alpha, beta)`` builds the elastodynamics effective
    matrix :math:`\\alpha M + \\beta K` per subdomain instead (Eq. 52).
    ``comm_backend`` selects the communicator backend (``"virtual"`` /
    ``"thread"``; None uses the session default of
    :func:`repro.parallel.comm.get_comm_backend`).

    Other PDEs plug in through :func:`build_edd_system_from_assembler`.

    Setup communication is *not* charged: counters are reset before
    returning so recorded statistics cover the solve only, matching the
    paper's timed region.
    """

    def assembler(elems: np.ndarray) -> COOMatrix:
        coo = assemble_matrix(mesh, material, "stiffness", element_subset=elems)
        if mass_shift is not None:
            alpha, beta = mass_shift
            m_coo = assemble_matrix(mesh, material, "mass", element_subset=elems)
            coo = COOMatrix(
                coo.shape,
                np.concatenate([coo.rows, m_coo.rows]),
                np.concatenate([coo.cols, m_coo.cols]),
                np.concatenate([beta * coo.data, alpha * m_coo.data]),
            )
        return coo

    return build_edd_system_from_assembler(
        mesh, bc, partition, f_full, assembler, comm_backend=comm_backend
    )


def build_edd_system_from_assembler(
    mesh: Mesh,
    bc: DirichletBC,
    partition: ElementPartition,
    f_full: np.ndarray,
    assembler,
    comm_backend: str | None = None,
) -> EDDSystem:
    """Generic EDD system builder for any PDE.

    ``assembler(element_subset) -> COOMatrix`` must return the subdomain's
    unassembled matrix contribution on *full* (unreduced) DOF numbering —
    e.g. a scalar conductivity assembly for heat problems.  Everything
    else (reduction, localization, distributed norm-1 scaling, rhs
    ownership split) is PDE-independent.  ``comm_backend`` picks the
    communicator implementation (None = session default).
    """
    submap = build_subdomain_map(mesh, partition, bc)
    comm = make_comm(submap, backend=comm_backend)
    full_to_free = bc.full_to_free()

    a_local = []
    for s in range(partition.n_parts):
        elems = partition.subdomain_elements(s)
        coo = assembler(elems)
        r = full_to_free[coo.rows]
        c = full_to_free[coo.cols]
        keep = (r >= 0) & (c >= 0)
        g = submap.l2g[s]
        g2l = np.full(bc.n_free, -1, dtype=np.int64)
        g2l[g] = np.arange(len(g))
        local = COOMatrix(
            (len(g), len(g)), g2l[r[keep]], g2l[c[keep]], coo.data[keep]
        )
        a_local.append(local.tocsr())

    return _finish_edd_system(submap, comm, a_local, bc, f_full)


def build_edd_system_streamed(
    mesh: Mesh,
    material: Material,
    bc: DirichletBC,
    partition: ElementPartition,
    f_full: np.ndarray,
    mass_shift: tuple | None = None,
    comm_backend: str | None = None,
    chunk: int | None = None,
) -> EDDSystem:
    """Memory-bounded variant of :func:`build_edd_system`.

    Streams each subdomain's element contributions through
    :func:`repro.fem.assembly.iter_element_coo` in chunks of ``chunk``
    elements (default :data:`repro.fem.assembly.DEFAULT_CHUNK`), localizing
    and Dirichlet-filtering every chunk as it arrives — so peak memory per
    process is one chunk of COO entries plus the (sparse) per-subdomain
    CSRs, and **no process ever materializes the global stiffness CSR** or
    the full element-matrix array.  Pair with
    :func:`repro.fem.cantilever.cantilever_inputs` (which skips the serial
    verification assembly) for large-mesh runs.

    Bit-identity with :func:`build_edd_system` holds by construction: the
    streamed chunks concatenate to the exact entry arrays the monolithic
    assembler produces (``mass_shift`` streams all scaled stiffness chunks,
    then all scaled mass chunks, matching the monolithic concatenation
    order), so ``tocsr`` and everything downstream agree bitwise.
    """
    from repro.fem.assembly import DEFAULT_CHUNK, iter_element_coo

    if chunk is None:
        chunk = DEFAULT_CHUNK
    submap = build_subdomain_map(mesh, partition, bc)
    comm = make_comm(submap, backend=comm_backend)
    full_to_free = bc.full_to_free()

    a_local = []
    for s in range(partition.n_parts):
        elems = partition.subdomain_elements(s)
        g = submap.l2g[s]
        g2l = np.full(bc.n_free, -1, dtype=np.int64)
        g2l[g] = np.arange(len(g))
        lrows: list = []
        lcols: list = []
        ldata: list = []

        def consume(kind: str, scale: float | None) -> None:
            for rows, cols, data in iter_element_coo(
                mesh, material, kind, element_subset=elems, chunk=chunk
            ):
                r = full_to_free[rows]
                c = full_to_free[cols]
                keep = (r >= 0) & (c >= 0)
                lrows.append(g2l[r[keep]])
                lcols.append(g2l[c[keep]])
                kept = data[keep]
                ldata.append(kept if scale is None else scale * kept)

        if mass_shift is None:
            consume("stiffness", None)
        else:
            alpha, beta = mass_shift
            consume("stiffness", beta)
            consume("mass", alpha)
        local = COOMatrix(
            (len(g), len(g)),
            np.concatenate(lrows) if lrows else np.empty(0, dtype=np.int64),
            np.concatenate(lcols) if lcols else np.empty(0, dtype=np.int64),
            np.concatenate(ldata) if ldata else np.empty(0),
        )
        a_local.append(local.tocsr())

    return _finish_edd_system(submap, comm, a_local, bc, f_full)


def _finish_edd_system(
    submap: SubdomainMap,
    comm: Comm,
    a_local: list,
    bc: DirichletBC,
    f_full: np.ndarray,
) -> EDDSystem:
    """Shared PDE-independent tail of the EDD builders: distributed norm-1
    scaling (Algorithm 3), rhs ownership split, owner masks, and the
    stats reset that keeps setup communication out of the solve counters."""
    # Distributed norm-1 scaling (Algorithm 3): d_i = sum_s ||k_i^(s)||_1.
    d_tilde = [a.row_norms1() for a in a_local]
    d_hat = comm.interface_assemble(d_tilde)
    if any(np.any(d == 0.0) for d in d_hat):
        raise ValueError("zero scaled row; partition left an isolated DOF")
    d_parts = [1.0 / np.sqrt(d) for d in d_hat]
    # One-pass fused symmetric scaling: a single new matrix per subdomain
    # instead of the intermediate DA that scale_rows().scale_cols() builds.
    a_local = [a.scale_sym(d, d) for a, d in zip(a_local, d_parts)]

    f_free = f_full[bc.free]
    b_parts = _ownership_split(submap, f_free)
    b_local = [d * p for d, p in zip(d_parts, b_parts)]

    owner = np.full(submap.n_global, -1, dtype=np.int64)
    for s in range(submap.n_parts - 1, -1, -1):
        owner[submap.l2g[s]] = s
    owner_mask = [
        (owner[submap.l2g[s]] == s).astype(np.float64)
        for s in range(submap.n_parts)
    ]

    comm.reset_stats()
    return EDDSystem(
        submap=submap,
        comm=comm,
        a_local=a_local,
        b_local=b_local,
        d_parts=d_parts,
        owner_mask=owner_mask,
    )
