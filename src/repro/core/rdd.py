"""Row-based (node) domain-decomposition FGMRES (Section 4, Algorithm 8).

The baseline the paper compares EDD against: the *assembled* global matrix
is row-partitioned by node ownership; each rank holds
:math:`\\bar K^{(s)}_{loc}` (couplings among owned DOFs) and
:math:`\\bar K^{(s)}_{ext}` (couplings to external interface DOFs).  Every
matvec — including each step of the polynomial preconditioner — performs
the Eq. 48 halo scatter/gather.  Vectors live on disjoint DOF sets, so the
local/global format distinction disappears and inner products are plain
local dots plus an allreduce (Eq. 47).

The structural costs the paper attributes to this approach are modeled
faithfully: the system is built from the *assembled* global matrix (the
assembly EDD avoids), and :meth:`RDDSystem.replication_factor` reports the
Fig. 8 duplicated-element overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.bc import DirichletBC
from repro.fem.mesh import Mesh
from repro.obs.tracer import NULL_TRACER
from repro.parallel.comm import Comm, make_comm
from repro.partition.interface import SubdomainMap
from repro.partition.node_partition import NodePartition
from repro.precond.base import PolynomialPreconditioner
from repro.precond.coarse import TwoLevelPreconditioner, TwoLevelSpec
from repro.precond.scaling import norm1_scaling
from repro.solvers.diagnostics import ConvergenceMonitor
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult
from repro.sparse.csr import CSRMatrix


@dataclass
class RDDSystem:
    """The diagonally-scaled row-partitioned system (Eq. 49).

    Attributes
    ----------
    comm:
        Communicator backend (a trivial :class:`SubdomainMap` backs it;
        all traffic goes through :meth:`halo_exchange`).
    own:
        Per rank, the global free-DOF indices it owns (disjoint).
    a_loc:
        Per rank, owned-rows x owned-cols block of the scaled matrix.
    a_ext:
        Per rank, owned-rows x external-cols block.
    ext:
        Per rank, the global indices of its external (halo) DOFs.
    plan:
        Halo plan consumed by :meth:`VirtualComm.halo_exchange`.
    b:
        Per rank, the scaled right-hand side on owned DOFs.
    d:
        Per rank, the scaling vector on owned DOFs.
    n_global:
        Total free DOFs.
    duplicated_elements:
        Per rank, Fig. 8 element-copy counts (setup redundancy metric).
    """

    comm: Comm
    own: list
    a_loc: list
    a_ext: list
    ext: list
    plan: dict
    b: list
    d: list
    n_global: int
    duplicated_elements: np.ndarray

    @property
    def n_parts(self) -> int:
        return len(self.own)

    def rank_engine(self):
        """The rank-operation engine executing this system's per-rank
        compute (inline everywhere except process-resident mode); the
        mode gate re-evaluates per call, the instance caches per mode."""
        from repro.parallel import resident

        mode = resident.engine_mode(self.comm, 2 * self.nnz_total)
        cached = self.__dict__.get("_engine")
        if cached is not None and cached[0] == mode:
            return cached[1]
        engine = (
            resident.ResidentRDDEngine(self)
            if mode == "resident"
            else resident.InlineRDDEngine(self)
        )
        self.__dict__["_engine"] = (mode, engine)
        return engine

    def matvec(self, x_parts: list, cache=None) -> list:
        """Eq. 48: halo exchange then
        ``y = K_loc x_loc + K_ext x_ext`` per rank.  The halo exchange is
        a collective and always runs through the comm; the per-rank block
        products are independent bodies the engine runs inline (thread
        backend overlaps them across cores) or worker-resident.
        ``cache`` labels an Arnoldi-step matvec for resident slot reuse;
        inline engines ignore it."""
        ext_vals = self.comm.halo_exchange(x_parts, self.plan)
        return self.rank_engine().matvec(x_parts, ext_vals, cache)

    @property
    def nnz_total(self) -> int:
        """Total stored entries across rank blocks (cached); the
        per-matvec work estimate handed to ``run_ranks``."""
        cached = self.__dict__.get("_nnz_total")
        if cached is None:
            cached = sum(a.nnz for a in self.a_loc) + sum(
                a.nnz for a in self.a_ext
            )
            self.__dict__["_nnz_total"] = cached
        return cached

    def matvec_block(self, x_parts: list) -> list:
        """Batched Eq. 48 over ``(n_own, k)`` blocks: ONE coalesced halo
        exchange for all ``k`` columns, then per-rank SpMMs.  Column ``c``
        is bit-identical to :meth:`matvec` of column ``c``."""
        ext_vals = self.comm.halo_exchange_block(x_parts, self.plan)
        return self.rank_engine().matvec_block(x_parts, ext_vals)

    def rhs_block(self, b: np.ndarray) -> list:
        """Scaled row-partitioned RHS block from an ``(n_free, k)`` array
        of raw right-hand sides (column ``c`` bit-identical to the builder's
        scaling of ``b[:, c]``)."""
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 1:
            b = b.reshape(-1, 1)
        if b.shape[0] != self.n_global:
            raise ValueError(
                f"RHS block has {b.shape[0]} rows, expected {self.n_global}"
            )
        return [
            np.ascontiguousarray(ds[:, None] * b[o])
            for ds, o in zip(self.d, self.own)
        ]

    def dot_block(self, x_parts: list, y_parts: list) -> np.ndarray:
        """Per-column Eq. 47 inner products: ``(k,)`` results from local
        per-column ddots plus ONE allreduce of ``k`` words."""
        comm = self.comm
        k = x_parts[0].shape[1]
        partial = np.empty((self.n_parts, k))

        def body(r: int) -> None:
            xr, yr = x_parts[r], y_parts[r]
            for c in range(k):
                partial[r, c] = xr[:, c] @ yr[:, c]
            comm.add_flops(r, 2 * xr.size)

        comm.run_ranks(body, work=2 * sum(x.size for x in x_parts))
        return comm.allreduce_sum(list(partial), words=k)

    def dot(self, x_parts: list, y_parts: list) -> float:
        """Eq. 47: local dots + one allreduce."""
        comm = self.comm
        partial = np.empty(self.n_parts)

        def body(r: int) -> None:
            partial[r] = x_parts[r] @ y_parts[r]
            comm.add_flops(r, 2 * len(x_parts[r]))

        comm.run_ranks(
            body, work=2 * sum(len(x) for x in x_parts)
        )
        return float(comm.allreduce_sum(list(partial)))

    def replication_factor(self) -> float:
        """Total element copies over unique elements (Fig. 8 overhead);
        1.0 would mean no interface element is duplicated."""
        return float(self.duplicated_elements.sum()) / self._n_unique_elements

    def interior_fraction(self) -> float:
        """Fraction of owned rows with no external coupling — the portion
        of every matvec a real implementation could overlap with the halo
        exchange (available when built with ``reorder_local``)."""
        total = sum(len(o) for o in self.own)
        return float(sum(self.n_interior)) / total if total else 0.0

    # populated by the builder
    _n_unique_elements: int = 1
    n_interior: list = None


def build_rdd_system(
    mesh: Mesh,
    bc: DirichletBC,
    partition: NodePartition,
    k_reduced: CSRMatrix,
    f_reduced: np.ndarray,
    reorder_local: bool = True,
    comm_backend: str | None = None,
) -> RDDSystem:
    """Split the assembled, reduced system into the RDD structure.

    Norm-1 scaling happens here row-wise (no communication, as the paper
    notes for RDD) before the split.  ``reorder_local`` applies the local
    DOF reordering the paper says RDD requires "to achieve satisfactory
    parallel performance": each rank's interior rows (no external
    coupling) come first, boundary rows last, so a real implementation
    could overlap the interior matvec with the halo exchange.  Setup
    traffic is not charged — counters start at zero for the solve.
    ``comm_backend`` selects the communicator implementation (``"virtual"``
    / ``"thread"``; None uses the session default).
    """
    d = norm1_scaling(k_reduced)
    a = k_reduced.scale_sym(d, d)  # fused one-pass DKD
    b_scaled = d * f_reduced

    dof_parts_full = np.repeat(partition.parts, mesh.dofs_per_node)
    dof_parts = dof_parts_full[bc.free]
    p = partition.n_parts
    own = [np.flatnonzero(dof_parts == s) for s in range(p)]
    if any(len(o) == 0 for o in own):
        raise ValueError("a rank owns no DOFs; reduce the rank count")

    owner_of = np.empty(a.shape[0], dtype=np.int64)
    for s in range(p):
        owner_of[own[s]] = s

    # Classify each owned row as interior (no external columns) or
    # boundary; optionally reorder interior-first.
    n_interior = []
    for s in range(p):
        has_ext = np.zeros(len(own[s]), dtype=bool)
        for li, r in enumerate(own[s]):
            lo, hi = a.indptr[r], a.indptr[r + 1]
            if np.any(owner_of[a.indices[lo:hi]] != s):
                has_ext[li] = True
        if reorder_local:
            order = np.concatenate(
                [np.flatnonzero(~has_ext), np.flatnonzero(has_ext)]
            )
            own[s] = own[s][order]
        n_interior.append(int((~has_ext).sum()))

    a_loc, a_ext, ext_lists = [], [], []
    for s in range(p):
        rows = own[s]
        cols_needed = set()
        for r in rows:
            lo, hi = a.indptr[r], a.indptr[r + 1]
            for cjj in a.indices[lo:hi]:
                if owner_of[cjj] != s:
                    cols_needed.add(int(cjj))
        ext = np.array(sorted(cols_needed), dtype=np.int64)
        ext_lists.append(ext)
        a_loc.append(a.submatrix(rows, rows))
        a_ext.append(a.submatrix(rows, ext))

    # Halo plan: plan[s][t] = (positions in own[s] that s sends to t,
    # slots in ext[s] where values received from t land).  Built from the
    # receiver's perspective, then merged per ordered pair.
    pos_in_own = np.empty(a.shape[0], dtype=np.int64)
    for s in range(p):
        pos_in_own[own[s]] = np.arange(len(own[s]))
    send_map: dict = {}
    recv_map: dict = {}
    for s in range(p):
        ext = ext_lists[s]
        owners = owner_of[ext]
        for t in np.unique(owners):
            t = int(t)
            recv_slots = np.flatnonzero(owners == t)
            recv_map[(s, t)] = recv_slots
            send_map[(t, s)] = pos_in_own[ext[recv_slots]]
    empty = np.zeros(0, dtype=np.int64)
    plan: dict = {s: {} for s in range(p)}
    for s, t in set(send_map) | set(recv_map):
        plan[s][t] = (send_map.get((s, t), empty), recv_map.get((s, t), empty))

    trivial_map = SubdomainMap(
        n_global=a.shape[0],
        n_parts=p,
        l2g=own,
        multiplicity=np.ones(a.shape[0], dtype=np.int64),
        shared=[dict() for _ in range(p)],
    )
    comm = make_comm(trivial_map, backend=comm_backend)

    system = RDDSystem(
        comm=comm,
        own=own,
        a_loc=a_loc,
        a_ext=a_ext,
        ext=ext_lists,
        plan=plan,
        b=[b_scaled[o] for o in own],
        d=[d[o] for o in own],
        n_global=a.shape[0],
        duplicated_elements=partition.duplicated_elements(),
    )
    system._n_unique_elements = mesh.n_elements
    system.n_interior = n_interior
    return system


def _axpy_parts(comm, y_parts, alpha, x_parts):
    out = [None] * len(y_parts)

    def body(r: int) -> None:
        out[r] = y_parts[r] + alpha * x_parts[r]
        comm.add_flops(r, 2 * len(y_parts[r]))

    comm.run_ranks(body, work=2 * sum(len(y) for y in y_parts))
    return out


def _scale_parts(comm, alpha, x_parts):
    out = [None] * len(x_parts)

    def body(r: int) -> None:
        out[r] = alpha * x_parts[r]
        comm.add_flops(r, len(x_parts[r]))

    comm.run_ranks(body, work=sum(len(x) for x in x_parts))
    return out


class _RDDVector:
    """Minimal arithmetic wrapper so polynomial ``apply_linear`` recurrences
    run unchanged on row-partitioned vectors."""

    __slots__ = ("parts", "system")

    def __init__(self, parts, system):
        self.parts = parts
        self.system = system

    def copy(self):
        return _RDDVector([p.copy() for p in self.parts], self.system)

    def __add__(self, other):
        return _RDDVector(
            _axpy_parts(self.system.comm, self.parts, 1.0, other.parts),
            self.system,
        )

    def __sub__(self, other):
        return _RDDVector(
            _axpy_parts(self.system.comm, self.parts, -1.0, other.parts),
            self.system,
        )

    def __mul__(self, scalar):
        return _RDDVector(
            _scale_parts(self.system.comm, float(scalar), self.parts),
            self.system,
        )

    __rmul__ = __mul__


def _resolve_precond_rdd(system: RDDSystem, options):
    """Parse ``options.precond`` and bind system-dependent markers
    (``"bj-ilu0"``, two-level composites) to the built system."""
    from repro.precond.spec import BJ_ILU0_MARKER, make_preconditioner

    precond = make_preconditioner(options.precond)
    if precond == BJ_ILU0_MARKER:
        from repro.precond.block_jacobi import BlockJacobiILU

        precond = BlockJacobiILU(system)
    elif isinstance(precond, TwoLevelSpec):
        precond = TwoLevelPreconditioner.build(system, precond)
    return precond


def _precondition_rdd(system: RDDSystem, precond, v_parts: list) -> list:
    if precond is None:
        return [p.copy() for p in v_parts]
    if isinstance(precond, TwoLevelPreconditioner):
        return precond.apply_rdd(system, v_parts)
    if hasattr(precond, "apply_parts"):
        # Block-Jacobi-style local preconditioner (Section 4.1.2): solve
        # per-rank with the diagonal block, no communication.
        return precond.apply_parts(v_parts)
    if not isinstance(precond, PolynomialPreconditioner):
        raise TypeError(
            "rdd_fgmres applies polynomial preconditioners through the "
            "halo-exchanging matvec; wrap other preconditioners yourself"
        )
    engine = system.rank_engine()
    if engine.resident:
        terms = precond.chain_terms()
        if terms is not None:
            # Fused resident path: the whole degree-m matvec/recurrence
            # chain in ONE dispatch (halos filled worker-side from the
            # shipped plan); None falls back to the inline recurrence.
            out = engine.poly_chain(precond, terms, v_parts)
            if out is not None:
                return out
    vec = _RDDVector([p.copy() for p in v_parts], system)
    out = precond.apply_linear(
        lambda v: _RDDVector(system.matvec(v.parts), system), vec
    )
    return out.parts


def _axpy_parts_block(comm, y_parts, alpha, x_parts):
    out = [None] * len(y_parts)

    def body(r: int) -> None:
        out[r] = y_parts[r] + alpha * x_parts[r]
        comm.add_flops(r, 2 * y_parts[r].size)

    comm.run_ranks(body, work=2 * sum(y.size for y in y_parts))
    return out


def _scale_parts_block(comm, alpha, x_parts):
    out = [None] * len(x_parts)

    def body(r: int) -> None:
        out[r] = alpha * x_parts[r]
        comm.add_flops(r, x_parts[r].size)

    comm.run_ranks(body, work=sum(x.size for x in x_parts))
    return out


def _scale_cols_parts(comm, scales, x_parts):
    """Per-column scalar multiply (batched ``alpha * x``): column ``c`` of
    the result is ``scales[c] * x[:, c]``."""
    out = [None] * len(x_parts)

    def body(r: int) -> None:
        out[r] = x_parts[r] * scales
        comm.add_flops(r, x_parts[r].size)

    comm.run_ranks(body, work=sum(x.size for x in x_parts))
    return out


def _take_cols_parts(parts, idx):
    idx = np.asarray(idx, dtype=np.int64)
    return [np.ascontiguousarray(p[:, idx]) for p in parts]


def _drop_col_parts(parts, pos):
    return [np.delete(p, pos, axis=1) for p in parts]


class _RDDBlock:
    """Arithmetic wrapper over ``(n_own, k)`` part blocks so polynomial
    ``apply_linear`` recurrences run unchanged on batched RDD vectors
    (column-exact with :class:`_RDDVector` arithmetic)."""

    __slots__ = ("parts", "system")

    def __init__(self, parts, system):
        self.parts = parts
        self.system = system

    def copy(self):
        return _RDDBlock([p.copy() for p in self.parts], self.system)

    def __add__(self, other):
        return _RDDBlock(
            _axpy_parts_block(self.system.comm, self.parts, 1.0, other.parts),
            self.system,
        )

    def __sub__(self, other):
        return _RDDBlock(
            _axpy_parts_block(self.system.comm, self.parts, -1.0, other.parts),
            self.system,
        )

    def __mul__(self, scalar):
        return _RDDBlock(
            _scale_parts_block(self.system.comm, float(scalar), self.parts),
            self.system,
        )

    __rmul__ = __mul__


def _precondition_rdd_block(system: RDDSystem, precond, v_parts: list) -> list:
    """Batched preconditioner application on ``(n_own, k)`` part blocks:
    polynomial recurrences run through the coalesced block matvec (one halo
    exchange per degree for all ``k`` columns); block-Jacobi solves per
    column locally."""
    if precond is None:
        return [p.copy() for p in v_parts]
    if isinstance(precond, TwoLevelPreconditioner):
        return precond.apply_rdd_block(system, v_parts)
    if hasattr(precond, "apply_parts_block"):
        return precond.apply_parts_block(v_parts)
    if not isinstance(precond, PolynomialPreconditioner):
        raise TypeError(
            "rdd_fgmres applies polynomial preconditioners through the "
            "halo-exchanging matvec; wrap other preconditioners yourself"
        )
    vec = _RDDBlock([p.copy() for p in v_parts], system)
    out = precond.apply_linear(
        lambda v: _RDDBlock(system.matvec_block(v.parts), system), vec
    )
    return out.parts


def rdd_fgmres(
    system: RDDSystem,
    precond=None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
    options=None,
    tracer=None,
) -> SolveResult:
    """Algorithm 8: restarted FGMRES on the row-partitioned scaled system.

    Returns the *unscaled* global solution, like :func:`edd_fgmres`.
    ``options`` — a :class:`repro.core.options.SolverOptions` — supplies
    ``restart``/``tol``/``max_iter`` and, when ``precond`` is None, the
    preconditioner parsed from ``options.precond`` (the same unified
    surface :func:`edd_fgmres` accepts).
    """
    if options is not None:
        restart = options.restart
        tol = options.tol
        max_iter = options.max_iter
        if precond is None:
            precond = _resolve_precond_rdd(system, options)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    comm = system.comm
    engine = system.rank_engine()
    p = system.n_parts
    x = [np.zeros(len(o)) for o in system.own]
    b = [bb.copy() for bb in system.b]

    ax = system.matvec(x)
    r = _axpy_parts(comm, b, -1.0, ax)
    norm_b0 = np.sqrt(system.dot(r, r))
    history = [1.0]
    if norm_b0 == 0.0:
        return SolveResult(np.zeros(system.n_global), True, 0, 0, history)
    monitor = ConvergenceMonitor(tol)
    if not monitor.check_finite(norm_b0, 0, "initial residual"):
        return SolveResult(
            np.zeros(system.n_global), False, 0, 0, history,
            monitor.finalize(False, 0, 1.0),
        )

    total_iters = 0
    restarts = 0
    converged = False
    beta = norm_b0
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    if traced:
        stats = comm.stats
        last_msgs = stats.total_nbr_messages
        last_words = stats.total_nbr_words
        last_reds = stats.max_reductions
    while not converged and total_iters < max_iter and not monitor.fatal:
        restarts += 1
        if traced:
            trc.begin("cycle", "solver", cycle=restarts)
        v = [_scale_parts(comm, 1.0 / beta, r)]
        engine.seed_basis(v[0])
        z_store: list = []
        lsq = GivensLSQ(restart, beta)
        broke_down = False
        j = 0
        while j < restart and total_iters < max_iter:
            if traced:
                trc.begin("arnoldi_step", "solver", j=j)
                trc.begin("precond_apply", "solver")
            z = _precondition_rdd(system, precond, v[j])
            if traced:
                trc.end()
            z_store.append(z)
            if traced:
                trc.begin("matvec", "solver")
            w = system.matvec(z, cache=j)
            if traced:
                trc.end()
            h = np.empty(j + 2)
            if traced:
                trc.begin("orthogonalize", "solver")
            # Fused CGS coefficient round mirroring edd_fgmres — partial
            # dots, ONE allreduce of j+1 words, AXPY updates — which the
            # engine runs inline or as a single worker dispatch.
            w = engine.arnoldi_step(j, h, v, w)
            h[j + 1] = np.sqrt(max(system.dot(w, w), 0.0))
            if traced:
                trc.end()  # orthogonalize
            if not monitor.check_finite(h, total_iters + 1, "Hessenberg column"):
                if traced:
                    trc.end()  # arnoldi_step
                break
            if traced:
                trc.begin("givens_update", "solver")
            res = lsq.append_column(h)
            if traced:
                trc.end()
            total_iters += 1
            history.append(res / norm_b0)
            if traced:
                m_now = stats.total_nbr_messages
                w_now = stats.total_nbr_words
                r_now = stats.max_reductions
                trc.metric(
                    iteration=total_iters, rel_res=res / norm_b0,
                    nbr_messages=m_now - last_msgs,
                    nbr_words=w_now - last_words,
                    reductions=r_now - last_reds,
                )
                last_msgs, last_words, last_reds = m_now, w_now, r_now
            if not monitor.check_divergence(res / norm_b0, total_iters):
                if traced:
                    trc.end()
                break
            if res / norm_b0 <= tol:
                converged = True
                j += 1
                if traced:
                    trc.end()
                break
            if h[j + 1] <= breakdown_tol:
                # Possible happy breakdown — confirmed by the recomputed
                # true residual below, never trusted outright.
                monitor.note_breakdown(float(h[j + 1]), total_iters)
                broke_down = True
                j += 1
                if traced:
                    trc.end()
                break
            v.append(_scale_parts(comm, 1.0 / h[j + 1], w))
            engine.commit_basis(1.0 / h[j + 1])
            j += 1
            if traced:
                trc.end()  # arnoldi_step
        y = lsq.solve()
        x = engine.axpy_update(x, y, z_store)
        ax = system.matvec(x)
        r = _axpy_parts(comm, b, -1.0, ax)
        beta = np.sqrt(system.dot(r, r))
        if not monitor.check_finite(beta, total_iters, "recomputed residual"):
            if traced:
                trc.end()  # cycle
            break
        true_rel = beta / norm_b0
        if traced:
            trc.metric(iteration=total_iters, true_rel=true_rel,
                       cycle=restarts)
        if true_rel <= tol:
            converged = True
        elif converged:
            converged = monitor.confirm_convergence(true_rel, total_iters)
        elif broke_down:
            monitor.confirm_breakdown(true_rel, total_iters)
        if not converged:
            monitor.cycle_end(true_rel, total_iters)
        if traced:
            trc.end(true_rel=true_rel)  # cycle

    u = np.zeros(system.n_global)
    for o, xs, ds in zip(system.own, x, system.d):
        u[o] = ds * xs
    final_rel = history[-1] if history else float("nan")
    return SolveResult(
        u,
        converged,
        total_iters,
        restarts,
        history,
        monitor.finalize(converged, total_iters, final_rel),
    )


def rdd_fgmres_block(
    system: RDDSystem,
    b,
    precond=None,
    restart: int = 25,
    tol: float = 1e-6,
    max_iter: int = 10_000,
    breakdown_tol: float = 1e-14,
    options=None,
    tracer=None,
) -> list:
    """Batched multi-RHS Algorithm 8: solve for all ``k`` columns of ``b``
    simultaneously; returns one :class:`SolveResult` per column (unscaled
    global solutions).

    ``b`` is an ``(n_free, k)`` array of raw right-hand sides or a
    pre-scaled per-rank part-block list (``(n_own, k)`` arrays).  The same
    guarantees as :func:`repro.core.edd.edd_fgmres_block` hold: column
    ``c`` runs exactly the single-RHS floating-point trajectory of
    :func:`rdd_fgmres` (bit-identical residual history), one halo exchange
    and one allreduce per Arnoldi step serve all ``k`` columns, and
    finished columns are masked out of the Krylov blocks.
    """
    if options is not None:
        restart = options.restart
        tol = options.tol
        max_iter = options.max_iter
        if precond is None:
            precond = _resolve_precond_rdd(system, options)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    comm = system.comm
    p = system.n_parts

    if isinstance(b, np.ndarray):
        b_blk = system.rhs_block(b)
    else:
        b_blk = list(b)
    k = b_blk[0].shape[1]
    if k == 0:
        return []
    n_rows = sum(bb.shape[0] for bb in b_blk)

    x_blk = [np.zeros((len(o), k)) for o in system.own]
    ax = system.matvec_block(x_blk)
    r_blk = _axpy_parts_block(comm, b_blk, -1.0, ax)
    norm_b0 = np.sqrt(system.dot_block(r_blk, r_blk))

    histories = [[1.0] for _ in range(k)]
    monitors = [ConvergenceMonitor(tol) for _ in range(k)]
    iters = [0] * k
    n_restarts = [0] * k
    converged = [False] * k
    zero_col = [False] * k
    bad_init = [False] * k
    active: list = []
    for c in range(k):
        if norm_b0[c] == 0.0:
            zero_col[c] = True
            converged[c] = True
        elif not monitors[c].check_finite(
            float(norm_b0[c]), 0, "initial residual"
        ):
            bad_init[c] = True
        else:
            active.append(c)

    r_cols = list(range(k))
    beta_arr = norm_b0
    partial_buf = np.empty((restart, p, k))
    trc = tracer if tracer is not None else NULL_TRACER
    traced = trc.enabled
    cycle_no = 0

    while active:
        cycle_no += 1
        if traced:
            trc.begin("cycle", "solver", cycle=cycle_no, k=len(active))
        participants = list(active)
        sel = [r_cols.index(c) for c in participants]
        if sel != list(range(len(r_cols))):
            rl = _take_cols_parts(r_blk, sel)
            betas = beta_arr[np.asarray(sel)]
        else:
            rl = r_blk
            betas = beta_arr
        for c in participants:
            n_restarts[c] += 1
        v = [_scale_cols_parts(comm, 1.0 / betas, rl)]
        z_store: list = []
        lsqs = {c: GivensLSQ(restart, float(betas[i]))
                for i, c in enumerate(participants)}
        claimed = {c: False for c in participants}
        broke = {c: False for c in participants}
        cols = list(participants)

        def exit_column(pos: int) -> None:
            c = cols[pos]
            y = lsqs[c].solve()
            if len(y):

                def body(r: int) -> None:
                    xr = x_blk[r]
                    for i, yi in enumerate(y):
                        xr[:, c] = xr[:, c] + float(yi) * z_store[i][r][:, pos]
                    comm.add_flops(r, 2 * len(y) * xr.shape[0])

                comm.run_ranks(body, work=2 * len(y) * n_rows)
            for i in range(len(v)):
                v[i] = _drop_col_parts(v[i], pos)
            for i in range(len(z_store)):
                z_store[i] = _drop_col_parts(z_store[i], pos)
            cols.pop(pos)

        j = 0
        while j < restart and cols:
            over = [q for q in range(len(cols)) if iters[cols[q]] >= max_iter]
            for q in reversed(over):
                exit_column(q)
            if not cols:
                break
            ka = len(cols)
            if traced:
                trc.begin("arnoldi_step", "solver", j=j, k=ka)
                trc.begin("precond_apply", "solver")
            z = _precondition_rdd_block(system, precond, v[j])
            if traced:
                trc.end()
            z_store.append(z)
            if traced:
                trc.begin("matvec", "solver")
            w = system.matvec_block(z)
            if traced:
                trc.end()

            hblk = np.empty((j + 2, ka))
            if traced:
                trc.begin("orthogonalize", "solver")
            partial = partial_buf[: j + 1, :, :ka]

            def dots_body(r: int) -> None:
                wr = w[r]
                for i in range(j + 1):
                    vp = v[i][r]
                    for cc in range(ka):
                        partial[i, r, cc] = vp[:, cc] @ wr[:, cc]
                comm.add_flops(r, 2 * (j + 1) * wr.size)

            comm.run_ranks(dots_body, work=2 * (j + 1) * n_rows * ka)
            hblk[: j + 1] = comm.allreduce_sum(
                list(partial.transpose(1, 0, 2)), words=(j + 1) * ka
            )

            new_w: list = [None] * p

            def ortho_body(r: int) -> None:
                wr = w[r]
                for i in range(j + 1):
                    wr = wr - hblk[i] * v[i][r]
                new_w[r] = wr
                comm.add_flops(r, 2 * (j + 1) * wr.size)

            comm.run_ranks(ortho_body, work=2 * (j + 1) * n_rows * ka)
            w = new_w
            hblk[j + 1] = np.sqrt(np.maximum(system.dot_block(w, w), 0.0))
            if traced:
                trc.end()  # orthogonalize
                trc.begin("givens_update", "solver")

            exits: list = []
            for pos in range(ka):
                c = cols[pos]
                mon = monitors[c]
                hcol = hblk[:, pos]
                if not mon.check_finite(hcol, iters[c] + 1, "Hessenberg column"):
                    exits.append(pos)
                    continue
                res = lsqs[c].append_column(hcol)
                iters[c] += 1
                histories[c].append(res / norm_b0[c])
                if not mon.check_divergence(res / norm_b0[c], iters[c]):
                    exits.append(pos)
                    continue
                if res / norm_b0[c] <= tol:
                    claimed[c] = True
                    exits.append(pos)
                    continue
                if hblk[j + 1, pos] <= breakdown_tol:
                    mon.note_breakdown(float(hblk[j + 1, pos]), iters[c])
                    broke[c] = True
                    exits.append(pos)
            if traced:
                trc.end()  # givens_update

            if exits:
                keep = [q for q in range(ka) if q not in exits]
                for q in reversed(exits):
                    exit_column(q)
                if not cols:
                    if traced:
                        trc.end()  # arnoldi_step
                    break
                w = _take_cols_parts(w, keep)
                h_next = hblk[j + 1, np.asarray(keep)]
            else:
                h_next = hblk[j + 1]
            v.append(_scale_cols_parts(comm, 1.0 / h_next, w))
            j += 1
            if traced:
                trc.end()  # arnoldi_step

        if cols:
            ys = [lsqs[c].solve() for c in cols]
            m = len(ys[0])
            if m:
                y_mat = np.array(ys)
                idx = np.asarray(cols)

                def x_body(r: int) -> None:
                    xr = x_blk[r]
                    for i in range(m):
                        xr[:, idx] = xr[:, idx] + z_store[i][r] * y_mat[:, i]
                    comm.add_flops(r, 2 * m * xr.shape[0] * len(idx))

                comm.run_ranks(x_body, work=2 * m * n_rows * len(idx))

        idxp = np.asarray(participants)
        b_sub = _take_cols_parts(b_blk, idxp)
        x_sub = _take_cols_parts(x_blk, idxp)
        ax = system.matvec_block(x_sub)
        r_blk = _axpy_parts_block(comm, b_sub, -1.0, ax)
        beta_arr = np.sqrt(system.dot_block(r_blk, r_blk))
        r_cols = list(participants)

        for p2, c in enumerate(participants):
            mon = monitors[c]
            beta_c = float(beta_arr[p2])
            if not mon.check_finite(beta_c, iters[c], "recomputed residual"):
                continue
            true_rel = beta_c / norm_b0[c]
            if true_rel <= tol:
                converged[c] = True
            elif claimed[c]:
                converged[c] = mon.confirm_convergence(true_rel, iters[c])
            elif broke[c]:
                mon.confirm_breakdown(true_rel, iters[c])
            if not converged[c]:
                mon.cycle_end(true_rel, iters[c])

        active = [
            c for c in participants
            if not (converged[c] or monitors[c].fatal or iters[c] >= max_iter)
        ]
        if traced:
            trc.end()  # cycle

    u_full = np.zeros((system.n_global, k))
    for o, xs, ds in zip(system.own, x_blk, system.d):
        u_full[o] = ds[:, None] * xs
    results = []
    for c in range(k):
        if zero_col[c]:
            results.append(
                SolveResult(np.zeros(system.n_global), True, 0, 0, histories[c])
            )
            continue
        if bad_init[c]:
            results.append(
                SolveResult(
                    np.zeros(system.n_global), False, 0, 0, histories[c],
                    monitors[c].finalize(False, 0, 1.0),
                )
            )
            continue
        final_rel = histories[c][-1] if histories[c] else float("nan")
        results.append(
            SolveResult(
                np.ascontiguousarray(u_full[:, c]),
                converged[c],
                iters[c],
                n_restarts[c],
                histories[c],
                monitors[c].finalize(converged[c], iters[c], final_rel),
            )
        )
    return results
