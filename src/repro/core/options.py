"""Unified solver configuration.

:class:`SolverOptions` is the single options surface of the public API:
:func:`repro.core.driver.solve_cantilever` accepts it as ``options=``, and
the lower-level entry points :func:`repro.core.edd.edd_fgmres` /
:func:`repro.core.rdd.rdd_fgmres` consume the same object — replacing the
former eleven-keyword driver signature with one validated, immutable,
JSON-serializable value.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

_METHODS = ("edd-enhanced", "edd-basic", "rdd")
_ORTHO = ("cgs", "mgs")


@dataclass(frozen=True)
class SolverOptions:
    """Validated, immutable configuration of one distributed solve.

    Attributes
    ----------
    method:
        ``"edd-enhanced"`` (Algorithm 6, default), ``"edd-basic"``
        (Algorithm 5) or ``"rdd"`` (Algorithm 8).
    precond:
        Preconditioner spec string for
        :func:`repro.precond.spec.make_preconditioner` (e.g. ``"gls(7)"``,
        ``"neumann(20)"``, ``"cheb(5)"``, ``"bj-ilu0"``) or None/"none".
    restart:
        FGMRES restart length.
    tol:
        Relative-residual convergence tolerance.
    max_iter:
        Inner-iteration cap across all restart cycles.
    partition_method:
        Mesh partitioner name (``"rcb"``, ``"greedy"``, ``"spectral"``...).
    kernel_backend:
        Sparse-kernel backend (:mod:`repro.sparse.kernels`); None keeps
        the session default.
    comm_backend:
        Communicator backend (:mod:`repro.parallel.comm`: ``"virtual"``,
        ``"thread"``, ``"process"`` or ``"chaos"``); None keeps the
        session default.
    orthogonalization:
        Gram-Schmidt flavour for EDD (``"cgs"`` or ``"mgs"``).
    dynamic:
        Solve the elastodynamics effective system (Eq. 52) instead of the
        static one.
    mass_shift:
        The :math:`(\\alpha, \\beta)` pair of the effective matrix
        :math:`\\alpha M + \\beta K` used when ``dynamic`` is true.
    """

    method: str = "edd-enhanced"
    precond: str | None = "gls(7)"
    restart: int = 25
    tol: float = 1e-6
    max_iter: int = 10_000
    partition_method: str = "rcb"
    kernel_backend: str | None = None
    comm_backend: str | None = None
    orthogonalization: str = "cgs"
    dynamic: bool = False
    mass_shift: tuple = (1.0, 2.5e-1)

    def __post_init__(self) -> None:
        """Validate eagerly so misconfiguration fails at construction."""
        if self.method not in _METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {_METHODS}"
            )
        if self.orthogonalization not in _ORTHO:
            raise ValueError(
                f"orthogonalization must be one of {_ORTHO}, "
                f"got {self.orthogonalization!r}"
            )
        if self.restart < 1:
            raise ValueError("restart must be >= 1")
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if not (self.tol > 0):
            raise ValueError("tol must be positive")
        if len(tuple(self.mass_shift)) != 2:
            raise ValueError("mass_shift must be an (alpha, beta) pair")

    def replace(self, **changes) -> "SolverOptions":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain JSON-serializable dict of every field."""
        out = asdict(self)
        out["mass_shift"] = list(self.mass_shift)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SolverOptions":
        """Inverse of :meth:`to_dict`."""
        payload = dict(payload)
        if "mass_shift" in payload:
            payload["mass_shift"] = tuple(payload["mass_shift"])
        return cls(**payload)
