"""Prepared-system solve sessions: build once, solve many right-hand sides.

The paper's timed region is the *solve*; everything before it — mesh
partitioning, per-subdomain assembly, distributed norm-1 scaling,
preconditioner construction — is setup that a production workflow (load
stepping, multiple load cases, time stepping with a frozen operator)
amortizes over many solves.  This module makes that split explicit:

* :class:`PreparedSystem` — the frozen product of the setup pipeline for
  one (problem, n_parts, setup-options) combination.  It keeps the
  communicator alive between solves (unlike the one-shot driver) and
  caches the serially-assembled verification operator, so repeated solves
  re-assemble nothing.
* :class:`SolveSession` — a keyed, *bounded* cache of prepared systems
  with hit/miss/eviction counters; a cache hit reports ``setup_time ~ 0``
  on the resulting summary, which is the measurable contract of reuse.
  Optional ``max_entries`` / ``max_bytes`` bounds evict least-recently-
  used systems (closing their communicators), so a long-lived service can
  cache aggressively without growing without bound.
* :func:`solve_cantilever_batch` — the multi-RHS entry point: one
  prepared system, one call to the block solvers
  (:func:`repro.core.edd.edd_fgmres_block` /
  :func:`repro.core.rdd.rdd_fgmres_block`), ``k`` solutions.

Setup-relevant options (those baked into the prepared system) are
``method``, ``precond``, ``partition_method``, ``dynamic``,
``mass_shift`` and ``comm_backend``; the remaining knobs (``tol``,
``restart``, ``max_iter``, ``orthogonalization``, ``kernel_backend``)
may vary per solve against the same prepared system.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres, edd_fgmres_block
from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION
from repro.core.rdd import build_rdd_system, rdd_fgmres, rdd_fgmres_block
from repro.fem.cantilever import CantileverProblem, cantilever_problem
from repro.obs.tracer import NULL_TRACER
from repro.parallel.machine import MachineModel, modeled_time
from repro.parallel.stats import CommStats
from repro.partition.element_partition import ElementPartition
from repro.partition.node_partition import NodePartition
from repro.precond.coarse import TwoLevelPreconditioner, TwoLevelSpec
from repro.precond.spec import BJ_ILU0_MARKER, make_preconditioner
from repro.sparse.kernels import use_backend

#: SolverOptions fields baked into a prepared system (changing any of them
#: requires a rebuild); the complement may vary per solve.
SETUP_FIELDS = (
    "method",
    "precond",
    "partition_method",
    "dynamic",
    "mass_shift",
    "comm_backend",
)


def _setup_key(options: SolverOptions) -> tuple:
    return tuple(getattr(options, f) for f in SETUP_FIELDS)


def _backend_ctx(kernel_backend):
    return (
        use_backend(kernel_backend) if kernel_backend is not None
        else nullcontext()
    )


def _resident_nbytes(*roots) -> int:
    """Estimated bytes of numpy storage reachable from ``roots``.

    Walks ``__dict__``/containers breadth-first with id-dedup (shared
    arrays count once), summing ``ndarray.nbytes``.  Deliberately skips
    modules/types/callables so the walk stays on data.  An estimate — the
    cache's byte bound is a resource guard, not an allocator ledger.
    """
    import types

    seen: set = set()
    total = 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += obj.nbytes
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
            continue
        if isinstance(
            obj,
            (str, bytes, int, float, complex, bool,
             type, types.ModuleType, types.FunctionType,
             types.MethodType, types.BuiltinFunctionType),
        ):
            continue
        d = getattr(obj, "__dict__", None)
        if d is not None:
            stack.append(d)
    return total


@dataclass
class BatchSolveSummary:
    """A multi-RHS solve plus everything the evaluation reports about it.

    The batched sibling of
    :class:`repro.core.driver.ParallelSolveSummary`: one entry of
    ``results`` / ``true_residuals`` per right-hand-side column, one
    shared set of communication counters (which is the point — the
    batched exchanges serve all columns at single-solve message counts).
    """

    results: list
    stats: CommStats
    n_parts: int
    n_rhs: int
    method: str
    precond_name: str
    options: SolverOptions | None = None
    comm_backend: str = "virtual"
    wall_time: float = field(default=0.0, compare=False)
    setup_time: float = field(default=0.0, compare=False)
    true_residuals: list = field(default_factory=list, compare=False)
    trace: dict | None = field(default=None, compare=False)

    @property
    def all_converged(self) -> bool:
        """True when every column converged (post-verification)."""
        return all(r.converged for r in self.results)

    @property
    def iterations(self) -> list:
        """Per-column iteration counts."""
        return [r.iterations for r in self.results]

    @property
    def result(self) -> list:
        """The per-column result list — the batch's payload under the
        :class:`~repro.core.outcome.SolveOutcome` protocol (alias of
        ``results``)."""
        return self.results

    def modeled_time(self, machine: MachineModel) -> float:
        """Modeled wall-clock seconds on ``machine`` for the whole batch."""
        return modeled_time(self.stats, machine)

    def to_dict(self, include_x: bool = False) -> dict:
        """JSON-serializable summary (consumed by the CLI and benchmarks);
        carries ``schema_version`` like every serialized solve artifact."""
        out = {
            "schema_version": SCHEMA_VERSION,
            "method": self.method,
            "precond": self.precond_name,
            "n_parts": self.n_parts,
            "n_rhs": self.n_rhs,
            "comm_backend": self.comm_backend,
            "wall_time": float(self.wall_time),
            "setup_time": float(self.setup_time),
            "true_residuals": [float(t) for t in self.true_residuals],
            "results": [r.to_dict(include_x=include_x) for r in self.results],
            "stats": self.stats.to_dict(),
            "options": None if self.options is None else self.options.to_dict(),
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out


class PreparedSystem:
    """The setup pipeline's frozen output: partition + distributed system +
    scaling + preconditioner, built once and reusable for many solves.

    Build through :meth:`build` (or a :class:`SolveSession`).  The
    communicator stays open until :meth:`close` — counters are reset at
    the start of every solve so each summary reports that solve's traffic
    only.
    """

    def __init__(
        self,
        problem: CantileverProblem,
        n_parts: int,
        options: SolverOptions,
        system,
        pc,
        pc_name: str,
        setup_time: float,
    ):
        self.problem = problem
        self.n_parts = n_parts
        self.options = options
        self.system = system
        self.pc = pc
        self.pc_name = pc_name
        self.setup_time = setup_time
        self._verify_a = None
        self._closed = False

    @classmethod
    def build(
        cls,
        problem: CantileverProblem | int,
        n_parts: int = 1,
        options: SolverOptions | None = None,
        tracer=None,
    ) -> "PreparedSystem":
        """Run the full setup pipeline (timed into ``setup_time``).

        ``tracer`` — optional :class:`repro.obs.Tracer`; records a
        ``setup`` phase span with ``partition`` / ``assemble`` /
        ``precond_build`` children.
        """
        options = options if options is not None else SolverOptions()
        trc = tracer if tracer is not None else NULL_TRACER
        traced = trc.enabled
        with _backend_ctx(options.kernel_backend):
            t0 = time.perf_counter()
            if traced:
                trc.begin("setup", "phase", n_parts=n_parts,
                          method=options.method)
            if isinstance(problem, int):
                problem = cantilever_problem(problem, with_mass=options.dynamic)
            if options.dynamic and problem.mass is None:
                if traced:
                    trc.end()
                raise ValueError(
                    "dynamic solve requires a problem built with_mass=True"
                )
            try:
                if traced:
                    trc.begin("precond_build", "phase")
                pc = make_preconditioner(options.precond)
                if traced:
                    trc.end()
                inner_marker = (
                    pc.inner_spec if isinstance(pc, TwoLevelSpec) else pc
                )
                if inner_marker == BJ_ILU0_MARKER and options.method != "rdd":
                    raise ValueError(
                        "bj-ilu0 is a local (assembled-block) preconditioner; "
                        "it only applies to the rdd method"
                    )
                if pc is None:
                    pc_name = "I"
                elif pc == BJ_ILU0_MARKER:
                    pc_name = "BJ-ILU0"
                elif isinstance(pc, TwoLevelSpec):
                    pc_name = pc.spec  # refined once bound to the system
                else:
                    pc_name = pc.name
                method = options.method

                if method in ("edd-basic", "edd-enhanced"):
                    if traced:
                        trc.begin("partition", "phase")
                    epart = ElementPartition.build(
                        problem.mesh, n_parts, options.partition_method
                    )
                    if traced:
                        trc.end()
                        trc.begin("assemble", "phase")
                    shift = options.mass_shift if options.dynamic else None
                    f_full = problem.bc.expand(problem.load)
                    system = build_edd_system(
                        problem.mesh,
                        problem.material,
                        problem.bc,
                        epart,
                        f_full,
                        mass_shift=shift,
                        comm_backend=options.comm_backend,
                    )
                    if traced:
                        trc.end()
                elif method == "rdd":
                    if traced:
                        trc.begin("partition", "phase")
                    npart = NodePartition.build(
                        problem.mesh, n_parts, options.partition_method
                    )
                    if traced:
                        trc.end()
                        trc.begin("assemble", "phase")
                    if options.dynamic:
                        from repro.core.driver import _combine

                        alpha, beta = options.mass_shift
                        k = _combine(problem.stiffness, problem.mass, beta, alpha)
                    else:
                        k = problem.stiffness
                    system = build_rdd_system(
                        problem.mesh,
                        problem.bc,
                        npart,
                        k,
                        problem.load,
                        comm_backend=options.comm_backend,
                    )
                    if traced:
                        trc.end()
                    if pc == BJ_ILU0_MARKER:
                        from repro.precond.block_jacobi import BlockJacobiILU

                        if traced:
                            trc.begin("precond_build", "phase")
                        pc = BlockJacobiILU(system)
                        if traced:
                            trc.end()
                        pc_name = pc.name
                else:  # pragma: no cover - SolverOptions validates upstream
                    raise ValueError(f"unknown method {method!r}")
                if isinstance(pc, TwoLevelSpec):
                    # Coarse-space construction needs the built system:
                    # assemble and factor E = W^T A W here (setup, cached
                    # with the prepared system for every later solve).
                    if traced:
                        trc.begin("precond_build", "phase", coarse=True)
                    components = (
                        problem.bc.free % problem.mesh.dofs_per_node
                        if pc.enrich
                        else None
                    )
                    pc = TwoLevelPreconditioner.build(
                        system, pc, components=components
                    )
                    if traced:
                        trc.end()
                    pc_name = pc.name
                engine = system.rank_engine()
                if engine.resident:
                    # Ship the per-rank CSR blocks to the worker pool now
                    # so the first solve pays no one-time transfer inside
                    # its timed region.
                    if traced:
                        trc.begin("resident_ship", "phase")
                    engine.ensure_shipped()
                    if traced:
                        trc.end()
                    if pc is not None and hasattr(pc, "_resident_states"):
                        # Preconditioner factor state (ILU factors, coarse
                        # bases) ships eagerly too, for the same reason.
                        engine.ensure_aux(
                            pc._resident_key, pc._resident_states
                        )
            finally:
                if traced:
                    trc.end()  # setup
            setup_time = time.perf_counter() - t0
        return cls(problem, n_parts, options, system, pc, pc_name, setup_time)

    # ------------------------------------------------------------------
    def _merge_options(self, options: SolverOptions | None) -> SolverOptions:
        if options is None:
            return self.options
        if _setup_key(options) != _setup_key(self.options):
            raise ValueError(
                "options change setup-relevant fields "
                f"{SETUP_FIELDS}; build a new PreparedSystem (or go through "
                "a SolveSession, which keys its cache on them)"
            )
        return options

    def verify_operator(self):
        """The serially assembled unscaled operator used for ground-truth
        residual checks — built once per prepared system and cached (the
        driver used to re-assemble it on every solve)."""
        if self._verify_a is None:
            from repro.core.driver import _verify_operator

            self._verify_a = _verify_operator(self.problem, self.options)
        return self._verify_a

    def solve(
        self,
        options: SolverOptions | None = None,
        setup_time: float | None = None,
        tracer=None,
    ):
        """One single-RHS solve (the system's baked-in load vector);
        returns a :class:`~repro.core.driver.ParallelSolveSummary`.

        ``setup_time`` overrides the summary's reported setup cost (a
        session cache hit reports ~0); defaults to this system's build
        time.  ``tracer`` — optional :class:`repro.obs.Tracer`; the
        communicator emits exchange spans into it for the duration of
        this solve, and the finished trace is attached as
        ``result.trace``.
        """
        from repro.core.driver import ParallelSolveSummary, _verify_solution

        opts = self._merge_options(options)
        comm = self.system.comm
        comm.reset_stats()
        trc = tracer if tracer is not None else NULL_TRACER
        traced = trc.enabled
        if traced:
            trc.meta.update(
                method=opts.method,
                precond=self.pc_name,
                n_parts=self.n_parts,
                n_rhs=1,
                comm_backend=comm.backend_name,
            )
            comm.set_tracer(trc)
        try:
            with _backend_ctx(opts.kernel_backend):
                if traced:
                    trc.begin("solve", "phase")
                t0 = time.perf_counter()
                if self.options.method == "rdd":
                    result = rdd_fgmres(
                        self.system, self.pc, options=opts, tracer=tracer
                    )
                else:
                    result = edd_fgmres(
                        self.system, self.pc, options=opts, tracer=tracer
                    )
                wall = time.perf_counter() - t0
                if traced:
                    trc.end(iterations=result.iterations)
            if traced:
                trc.begin("verify", "phase")
            true_rel = _verify_solution(
                self.problem, opts, result, a=self.verify_operator()
            )
            if traced:
                trc.end(true_residual=true_rel)
        finally:
            if traced:
                comm.set_tracer(None)
        if traced:
            result.trace = trc.to_dict()
        return ParallelSolveSummary(
            result=result,
            stats=comm.stats.snapshot(),
            n_parts=self.n_parts,
            method=opts.method,
            precond_name=self.pc_name,
            options=opts,
            comm_backend=comm.backend_name,
            wall_time=wall,
            true_residual=true_rel,
            setup_time=self.setup_time if setup_time is None else setup_time,
        )

    def solve_batch(
        self,
        b_block: np.ndarray,
        options: SolverOptions | None = None,
        setup_time: float | None = None,
        tracer=None,
    ) -> BatchSolveSummary:
        """Solve for every column of ``b_block`` (``(n_free, k)`` raw
        right-hand sides) through the batched block solvers: one SpMM-based
        Arnoldi recurrence, one coalesced exchange per step for all ``k``
        columns.  Each column is verified against the cached serial
        operator exactly as single solves are.  ``tracer`` records one
        shared trace for the whole batch, attached as ``summary.trace``."""
        from repro.core.driver import _verify_residual

        opts = self._merge_options(options)
        b_block = np.asarray(b_block, dtype=np.float64)
        if b_block.ndim == 1:
            b_block = b_block.reshape(-1, 1)
        comm = self.system.comm
        comm.reset_stats()
        trc = tracer if tracer is not None else NULL_TRACER
        traced = trc.enabled
        if traced:
            trc.meta.update(
                method=opts.method,
                precond=self.pc_name,
                n_parts=self.n_parts,
                n_rhs=int(b_block.shape[1]),
                comm_backend=comm.backend_name,
            )
            comm.set_tracer(trc)
        try:
            with _backend_ctx(opts.kernel_backend):
                if traced:
                    trc.begin("solve", "phase")
                t0 = time.perf_counter()
                if self.options.method == "rdd":
                    results = rdd_fgmres_block(
                        self.system, b_block, self.pc, options=opts,
                        tracer=tracer,
                    )
                else:
                    results = edd_fgmres_block(
                        self.system, b_block, self.pc, options=opts,
                        tracer=tracer,
                    )
                wall = time.perf_counter() - t0
                if traced:
                    trc.end()
            if traced:
                trc.begin("verify", "phase")
            a = self.verify_operator()
            rels = [
                _verify_residual(a, b_block[:, c], opts, res)
                for c, res in enumerate(results)
            ]
            if traced:
                trc.end()
        finally:
            if traced:
                comm.set_tracer(None)
        return BatchSolveSummary(
            results=results,
            stats=comm.stats.snapshot(),
            n_parts=self.n_parts,
            n_rhs=b_block.shape[1],
            method=opts.method,
            precond_name=self.pc_name,
            options=opts,
            comm_backend=comm.backend_name,
            wall_time=wall,
            setup_time=self.setup_time if setup_time is None else setup_time,
            true_residuals=rels,
            trace=trc.to_dict() if traced else None,
        )

    @property
    def nbytes(self) -> int:
        """Estimated resident numpy bytes of this prepared system (the
        distributed system, preconditioner, problem arrays and the cached
        verification operator; shared arrays counted once).  Feeds the
        :class:`SolveSession` byte bound."""
        return _resident_nbytes(
            self.system, self.pc, self.problem, self._verify_a
        )

    def close(self) -> None:
        """Release the communicator's backend resources; idempotent."""
        if not self._closed:
            self._closed = True
            self.system.comm.close()

    def __enter__(self) -> "PreparedSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SolveSession:
    """A keyed, bounded LRU cache of :class:`PreparedSystem` instances.

    Key: (problem identity, ``n_parts``, the :data:`SETUP_FIELDS` of the
    options).  Problem identity is the mesh id for Table 2 integer inputs
    and object identity for prebuilt :class:`CantileverProblem` instances
    (the session holds a reference, so identity stays stable while
    cached).  ``hits`` / ``misses`` / ``evictions`` count cache outcomes;
    a hit's summary reports ``setup_time = 0.0``, a miss's the fresh
    build time.

    Bounds (both optional, enforced after every insert, LRU-first):

    ``max_entries``
        Maximum number of cached prepared systems.
    ``max_bytes``
        Maximum estimated resident numpy bytes
        (:attr:`PreparedSystem.nbytes`, recorded at insert) summed over
        entries.  The most recently inserted entry is never evicted, so a
        single system larger than the bound still solves — the cache just
        holds nothing else.

    Evicted systems are :meth:`closed <PreparedSystem.close>`; a later
    request for the same key rebuilds from scratch (a miss) and is
    bitwise identical to the evicted build — setup is deterministic.

    Thread safety: all cache operations hold one reentrant lock, so a
    multi-threaded caller (the service's worker executor) sees consistent
    counters and never double-builds a key.  Solves on a *returned*
    prepared system are not serialized here — callers must not run two
    solves on the same system concurrently (the service serializes per
    key).
    """

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._cache: OrderedDict = OrderedDict()
        self._entry_bytes: dict = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def cache_bytes(self) -> int:
        """Estimated resident bytes of all cached systems (as recorded
        at insert time)."""
        with self._lock:
            return sum(self._entry_bytes.values())

    def cache_stats(self) -> dict:
        """Snapshot of the cache's occupancy, bounds and counters
        (JSON-serializable; surfaced by the service's ``stats()``)."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "bytes": sum(self._entry_bytes.values()),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def _evict_over_bounds(self) -> None:
        """Pop LRU entries until within bounds (lock held by caller).
        The newest entry (last in the OrderedDict) is never evicted."""
        def over() -> bool:
            if self.max_entries is not None and len(self._cache) > self.max_entries:
                return True
            return (
                self.max_bytes is not None
                and sum(self._entry_bytes.values()) > self.max_bytes
            )

        while len(self._cache) > 1 and over():
            key, ps = self._cache.popitem(last=False)
            self._entry_bytes.pop(key, None)
            self.evictions += 1
            ps.close()

    def _lookup(
        self,
        problem: CantileverProblem | int,
        n_parts: int,
        options: SolverOptions | None,
        tracer=None,
    ) -> tuple:
        options = options if options is not None else SolverOptions()
        pkey = (
            ("mesh", problem)
            if isinstance(problem, int)
            else ("obj", id(problem))
        )
        key = (pkey, n_parts, _setup_key(options))
        with self._lock:
            ps = self._cache.get(key)
            if ps is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                return ps, True, options
            self.misses += 1
            ps = PreparedSystem.build(problem, n_parts, options, tracer=tracer)
            self._cache[key] = ps
            self._entry_bytes[key] = ps.nbytes
            self._evict_over_bounds()
        return ps, False, options

    def prepared(
        self,
        problem: CantileverProblem | int,
        n_parts: int = 1,
        options: SolverOptions | None = None,
    ) -> PreparedSystem:
        """The cached prepared system for this configuration (building it
        on a miss)."""
        ps, _, _ = self._lookup(problem, n_parts, options)
        return ps

    def solve(
        self,
        problem: CantileverProblem | int,
        n_parts: int = 1,
        options: SolverOptions | None = None,
        tracer=None,
    ):
        """Single-RHS solve through the cache; ``setup_time`` on the
        summary is 0 on a hit.  A cache hit's trace has no ``setup``
        phase span (there was no setup)."""
        ps, hit, options = self._lookup(problem, n_parts, options, tracer)
        return ps.solve(
            options, setup_time=0.0 if hit else ps.setup_time, tracer=tracer
        )

    def solve_batch(
        self,
        problem: CantileverProblem | int,
        b_block: np.ndarray,
        n_parts: int = 1,
        options: SolverOptions | None = None,
        tracer=None,
    ) -> BatchSolveSummary:
        """Multi-RHS solve through the cache; ``setup_time`` on the
        summary is 0 on a hit."""
        ps, hit, options = self._lookup(problem, n_parts, options, tracer)
        return ps.solve_batch(
            b_block, options, setup_time=0.0 if hit else ps.setup_time,
            tracer=tracer,
        )

    def close(self) -> None:
        """Close every cached prepared system and empty the cache
        (hit/miss/eviction counters are kept)."""
        with self._lock:
            for ps in self._cache.values():
                ps.close()
            self._cache.clear()
            self._entry_bytes.clear()

    def __enter__(self) -> "SolveSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def solve_cantilever_batch(
    problem: CantileverProblem | int,
    b_block: np.ndarray,
    n_parts: int = 1,
    options: SolverOptions | None = None,
    session: SolveSession | None = None,
    tracer=None,
) -> BatchSolveSummary:
    """Solve a cantilever problem for ``k`` right-hand sides at once.

    The batched sibling of :func:`repro.core.driver.solve_cantilever`:
    ``b_block`` is ``(n_free, k)`` — each column a load vector on the free
    DOFs.  Setup (partition, assembly, scaling, preconditioner) runs once
    for the whole batch; the block solvers then carry all ``k`` columns
    through a shared Arnoldi recurrence with coalesced exchanges.  Pass a
    :class:`SolveSession` to also reuse setup *across* calls, and a
    :class:`repro.obs.Tracer` to record the setup/solve/verify timeline
    (attached as ``summary.trace``).
    """
    if session is not None:
        return session.solve_batch(problem, b_block, n_parts, options, tracer)
    ps = PreparedSystem.build(problem, n_parts, options, tracer=tracer)
    try:
        return ps.solve_batch(b_block, tracer=tracer)
    finally:
        ps.close()
